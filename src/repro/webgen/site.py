"""Per-site state: membership, version timelines, and weekly manifests.

A :class:`SiteState` is built once per domain from the scenario seed and
then answers ``manifest(week)`` queries: the exact set of client-side
resources the site's landing page carries at that snapshot.  Version
changes are precomputed as sparse timelines, so a manifest lookup is a
handful of binary searches.

The update behaviour encodes Section 7's findings:

* *frozen* sites never change anything (the reason jQuery 1.12.4 stays
  dominant for four years);
* *laggard* sites refresh rarely; *responsive* sites within weeks;
* WordPress sites with the bundled jQuery follow the platform's release
  train — including the December 2020 auto-update wave.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ScenarioConfig
from ..semver import ReleaseCatalog, builtin_catalogs, parse_version
from ..timeline import StudyCalendar
from .bundles import VendoredInclusion, sample_vendored
from .domains import Domain
from .flashgen import FlashAssignment, FlashModel
from .github_hosting import GITHUB_SCRIPTS
from .libraries import (
    GENERIC_THIRD_PARTY,
    LibraryProfile,
    RESOURCE_TYPE_SHARES,
    TOP15_ORDER,
    library_profiles,
)
from .platform import WordPressModel, bundled_libraries


class UpdatePolicy(enum.Enum):
    """How this site's developer responds to releases."""

    FROZEN = "frozen"
    LAGGARD = "laggard"
    RESPONSIVE = "responsive"


@dataclasses.dataclass(frozen=True)
class LibraryInclusion:
    """One library on one page at one week (generation ground truth).

    ``version_visible`` models the real-world fraction of inclusions
    whose URL carries no version information (``jquery.min.js`` with no
    suffix, path, or ``?ver=``): the library is fingerprintable but the
    version is not, exactly as with Wappalyzer in the paper's pipeline.
    """

    library: str
    version: str
    external: bool
    host: Optional[str]
    integrity: bool
    crossorigin: Optional[str]
    wordpress_bundled: bool = False
    version_visible: bool = True


@dataclasses.dataclass(frozen=True)
class ExtraScript:
    """A non-top-15 script inclusion (GitHub-hosted libraries)."""

    url: str
    integrity: bool


@dataclasses.dataclass(frozen=True)
class FlashUsage:
    """Flash embed state at one week."""

    swf_url: str
    external: bool
    script_access: Optional[str]
    specified: bool
    visible: bool


@dataclasses.dataclass(frozen=True)
class SiteManifest:
    """Ground truth for one (domain, week) landing page."""

    domain: Domain
    week_ordinal: int
    wordpress_version: Optional[str]
    libraries: Tuple[LibraryInclusion, ...]
    extra_scripts: Tuple[ExtraScript, ...]
    resource_types: FrozenSet[str]
    flash: Optional[FlashUsage]
    #: Libraries vendored inside the site's application bundle (no URL;
    #: empty unless the scenario enables bundling).
    vendored: Tuple[VendoredInclusion, ...] = ()

    def inclusion_of(self, library: str) -> Optional[LibraryInclusion]:
        for inclusion in self.libraries:
            if inclusion.library == library:
                return inclusion
        return None


@dataclasses.dataclass
class _Membership:
    """One site's relationship with one library."""

    library: str
    active_from: int
    active_until: Optional[int]  # exclusive; None = forever
    external: bool
    host: Optional[str]
    integrity: bool
    crossorigin: Optional[str]
    version_timeline: List[Tuple[int, str]]
    version_visible: bool = True

    def active_at(self, ordinal: int) -> bool:
        if ordinal < self.active_from:
            return False
        return self.active_until is None or ordinal < self.active_until

    def version_at(self, ordinal: int) -> str:
        index = bisect.bisect_right([w for w, _ in self.version_timeline], ordinal)
        return self.version_timeline[max(0, index - 1)][1]


def _weighted_choice(
    rng: np.random.Generator, items: Sequence[Tuple[str, float]]
) -> str:
    weights = np.array([w for _, w in items], dtype=float)
    weights /= weights.sum()
    return items[int(rng.choice(len(items), p=weights))][0]


class SiteState:
    """The full four-year behaviour of one domain's landing page."""

    def __init__(
        self,
        domain: Domain,
        config: ScenarioConfig,
        wordpress_model: WordPressModel,
        flash_model: FlashModel,
        profiles: Optional[Dict[str, LibraryProfile]] = None,
        catalogs: Optional[Dict[str, ReleaseCatalog]] = None,
    ) -> None:
        self.domain = domain
        self.config = config
        self.calendar: StudyCalendar = config.calendar
        self._profiles = profiles or library_profiles()
        self._catalogs = catalogs or builtin_catalogs()
        rng = np.random.default_rng([config.seed, domain.rank, 0x5EED])
        self._build(rng, wordpress_model, flash_model)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(
        self,
        rng: np.random.Generator,
        wordpress_model: WordPressModel,
        flash_model: FlashModel,
    ) -> None:
        behavior = self.config.behavior
        #: Whether this site's self-hosted mirrors carry benign edits
        #: (set by the ecosystem; Section 9 hash audit).
        self.mirrors_modified = False
        self._manifest_memo: Optional[Tuple[int, SiteManifest]] = None
        draw = rng.random()
        if draw < behavior.frozen:
            self.policy = UpdatePolicy.FROZEN
        elif draw < behavior.frozen + behavior.laggard:
            self.policy = UpdatePolicy.LAGGARD
        else:
            self.policy = UpdatePolicy.RESPONSIVE

        # WordPress platform assignment.
        self.uses_wordpress = wordpress_model.uses_wordpress(rng)
        self.wordpress_auto = (
            self.uses_wordpress and wordpress_model.is_auto_updating(rng)
        )
        self.wordpress_bundled = (
            self.uses_wordpress and wordpress_model.uses_bundled_jquery(rng)
        )
        self.wp_timeline: List[Tuple[int, str]] = (
            wordpress_model.version_timeline(rng, self.wordpress_auto)
            if self.uses_wordpress
            else []
        )

        # WordPress-bundled inclusion delivery: mostly internal
        # (wp-includes), some via the wp.com CDN or a hosting provider's
        # own (non-CDN) asset host.
        self._wp_bundle_host: Optional[str] = None
        if self.uses_wordpress:
            bundle_draw = rng.random()
            if bundle_draw < 0.08:
                self._wp_bundle_host = "c0.wp.com"
            elif bundle_draw < 0.16:
                from .libraries import GENERIC_THIRD_PARTY as _THIRD_PARTY

                self._wp_bundle_host = _THIRD_PARTY

        # A slice of the web serves no JavaScript at all (the paper's
        # Figure 2(b): 94.7% of sites use it, so 5.3% do not).  Only
        # non-WordPress sites can be script-less.
        self.no_javascript = (
            not self.uses_wordpress
            and rng.random() < 0.053 / max(1.0 - self.config.platform.wordpress_share, 1e-9)
        )

        # Organic library memberships.
        self.memberships: List[_Membership] = []
        self._member_names: Dict[str, _Membership] = {}
        total_weeks = len(self.calendar)
        if not self.no_javascript:
            for name in TOP15_ORDER:
                profile = self._profiles[name]
                self._sample_membership(rng, profile, total_weeks)

        # Static resource types.
        types = set() if self.no_javascript else {"javascript"}
        for resource, share in RESOURCE_TYPE_SHARES.items():
            if resource == "javascript":
                continue
            if self.no_javascript and resource in ("imported-html", "axd"):
                # Those resources are carried by <script> tags.
                continue
            if rng.random() < share:
                types.add(resource)
        if self.uses_wordpress:
            types.add("css")
        self.resource_types: FrozenSet[str] = frozenset(types)

        # Flash.
        percentile = self.domain.rank / max(1, self.config.population)
        self.flash: FlashAssignment = flash_model.assign(rng, percentile)
        self._flash_model = flash_model
        self._flash_swf = (
            f"https://media.swf-hosting.net/movies/site{self.domain.rank}.swf"
            if self.flash.external_swf
            else f"/media/intro-{self.domain.rank % 7}.swf"
        )

        # GitHub-hosted extras.
        self.extra_scripts: Tuple[ExtraScript, ...] = ()
        if not self.no_javascript and rng.random() < self.config.hygiene.github_hosted_share:
            count = 1 + int(rng.random() < 0.25)
            scripts = []
            for _ in range(count):
                url = _weighted_choice(rng, GITHUB_SCRIPTS)
                integrity = bool(
                    rng.random() < self.config.hygiene.github_integrity_probability
                )
                scripts.append(ExtraScript(url=url, integrity=integrity))
            self.extra_scripts = tuple(scripts)

        # Vendored application bundle (scenario packs).  A dedicated RNG
        # stream keeps every baseline draw above untouched: with
        # bundling disabled this block consumes nothing, and with it
        # enabled the extra draws never interleave with the organic
        # stream.
        self.vendored: Tuple[VendoredInclusion, ...] = ()
        bundling = self.config.bundling
        if bundling.enabled and not self.no_javascript:
            vendor_rng = np.random.default_rng(
                [self.config.seed, self.domain.rank, 0xB17D]
            )
            self.vendored = sample_vendored(
                vendor_rng,
                bundling,
                self._catalogs,
                self.calendar.week_at(0).date,
            )

    # ------------------------------------------------------------------
    def _hazard(self) -> float:
        behavior = self.config.behavior
        if self.policy is UpdatePolicy.FROZEN:
            return 0.0
        if self.policy is UpdatePolicy.LAGGARD:
            return behavior.laggard_weekly_hazard
        return behavior.responsive_weekly_hazard

    def _sample_membership(
        self, rng: np.random.Generator, profile: LibraryProfile, total_weeks: int
    ) -> None:
        # WordPress-bundled jQuery / jQuery-Migrate are not organic
        # memberships; they derive from the platform timeline.
        share = profile.share_start
        if profile.requires is not None:
            # Soft dependency: concentrate usage among sites having the
            # prerequisite, keeping the marginal share intact.
            prerequisite = self._member_names.get(profile.requires)
            has_prereq = prerequisite is not None or (
                profile.requires == "jquery" and self.wordpress_bundled
            )
            req_share = self._profiles[profile.requires].share_start
            if has_prereq:
                share = min(1.0, 0.8 * profile.share_start / max(req_share, 1e-6))
            else:
                share = 0.2 * profile.share_start / max(1.0 - req_share, 1e-6)

        uses = rng.random() < share
        active_from = 0
        active_until: Optional[int] = None
        if not uses:
            if profile.trending_up:
                adopt_fraction = (profile.share_end - profile.share_start) / max(
                    1.0 - profile.share_start, 1e-9
                )
                if rng.random() < adopt_fraction:
                    active_from = int(rng.integers(1, total_weeks))
                    uses = True
            if not uses:
                return
        elif not profile.trending_up and profile.share_start > 0:
            drop_fraction = 1.0 - profile.share_end / profile.share_start
            if rng.random() < drop_fraction:
                active_until = int(rng.integers(1, total_weeks))

        external = rng.random() >= profile.internal_fraction
        host: Optional[str] = None
        via_cdn = False
        if external:
            if rng.random() < profile.cdn_fraction and profile.cdn_hosts:
                host = _weighted_choice(rng, profile.cdn_hosts)
                via_cdn = True
            else:
                host = GENERIC_THIRD_PARTY
        # Version visibility (the fingerprint engine can only read
        # versions that appear in the URL).  The rate is a per-library
        # calibration; see LibraryProfile.version_visible_rate.
        version_visible = rng.random() < profile.version_visible_rate
        integrity = external and rng.random() < self.config.hygiene.integrity_probability
        crossorigin: Optional[str] = None
        if integrity:
            hygiene = self.config.hygiene
            draw = rng.random()
            if draw < hygiene.crossorigin_anonymous:
                crossorigin = "anonymous"
            elif draw < hygiene.crossorigin_anonymous + hygiene.crossorigin_use_credentials:
                crossorigin = "use-credentials"

        catalog = self._catalogs.get(profile.name)
        start_date = self.calendar.week_at(active_from).date
        if active_from == 0:
            version = _weighted_choice(rng, profile.initial_versions)
            # Never start on a release that postdates the first snapshot.
            if catalog is not None and version in catalog:
                if catalog.get(version).date > start_date:
                    fallback = catalog.latest_as_of(start_date)
                    if fallback is not None:
                        version = fallback.version.text
        else:
            # Late adopters start on the then-current release.
            version = (
                catalog.latest_as_of(start_date).version.text
                if catalog and catalog.latest_as_of(start_date)
                else profile.initial_versions[-1][0]
            )

        timeline = self._build_version_timeline(
            rng, catalog, version, active_from, total_weeks, profile.discontinued
        )
        membership = _Membership(
            library=profile.name,
            active_from=active_from,
            active_until=active_until,
            external=external,
            host=host,
            integrity=integrity,
            crossorigin=crossorigin,
            version_timeline=timeline,
            version_visible=version_visible,
        )
        self.memberships.append(membership)
        self._member_names[profile.name] = membership

        # Discontinued-project migration (jquery-cookie -> js-cookie).
        if (
            profile.migrates_to
            and active_until is None
            and self.policy is not UpdatePolicy.FROZEN
            and rng.random() < 0.39
        ):
            migrate_week = int(rng.integers(1, total_weeks))
            membership.active_until = migrate_week
            target_profile = self._profiles[profile.migrates_to]
            if profile.migrates_to not in self._member_names:
                target_catalog = self._catalogs.get(profile.migrates_to)
                date = self.calendar.week_at(migrate_week).date
                latest = (
                    target_catalog.latest_as_of(date) if target_catalog else None
                )
                successor = _Membership(
                    library=profile.migrates_to,
                    active_from=migrate_week,
                    active_until=None,
                    external=external,
                    host=host,
                    integrity=integrity,
                    crossorigin=crossorigin,
                    version_timeline=[
                        (migrate_week, latest.version.text if latest else
                         target_profile.initial_versions[-1][0])
                    ],
                )
                self.memberships.append(successor)
                self._member_names[profile.migrates_to] = successor

    def _build_version_timeline(
        self,
        rng: np.random.Generator,
        catalog: Optional[ReleaseCatalog],
        initial_version: str,
        active_from: int,
        total_weeks: int,
        discontinued: bool,
    ) -> List[Tuple[int, str]]:
        timeline: List[Tuple[int, str]] = [(active_from, initial_version)]
        hazard = self._hazard()
        if hazard <= 0.0 or catalog is None or discontinued:
            return timeline
        current = parse_version(initial_version)
        ordinal = active_from
        while True:
            ordinal += int(rng.geometric(hazard))
            if ordinal >= total_weeks:
                break
            # Each refresh touches this library with probability 0.7 —
            # developers rarely update everything at once.
            if rng.random() >= 0.7:
                continue
            date = self.calendar.week_at(ordinal).date
            available = catalog.released_on_or_before(date)
            if not available:
                continue
            ordered = sorted(available, key=lambda r: r.version)
            pick = ordered[-1]
            if len(ordered) > 1 and rng.random() >= 0.85:
                pick = ordered[-2]
            if pick.version > current:
                timeline.append((ordinal, pick.version.text))
                current = pick.version
        return timeline

    # ------------------------------------------------------------------
    # Weekly manifest assembly
    # ------------------------------------------------------------------
    def wordpress_version_at(self, ordinal: int) -> Optional[str]:
        if not self.uses_wordpress:
            return None
        return WordPressModel.version_at(self.wp_timeline, ordinal)

    def manifest(self, ordinal: int) -> SiteManifest:
        """Ground truth for this site's landing page at a kept week."""
        # One-slot memo: within a crawl week the manifest is requested
        # once for the site-state digest and once for page serving.
        memo = self._manifest_memo
        if memo is not None and memo[0] == ordinal:
            return memo[1]
        manifest = self._build_manifest(ordinal)
        self._manifest_memo = (ordinal, manifest)
        return manifest

    def _build_manifest(self, ordinal: int) -> SiteManifest:
        inclusions: List[LibraryInclusion] = []
        wp_version = self.wordpress_version_at(ordinal)

        if wp_version is not None and self.wordpress_bundled:
            jquery_version, migrate_version = bundled_libraries(wp_version)
            host = self._wp_bundle_host
            inclusions.append(
                LibraryInclusion(
                    library="jquery",
                    version=jquery_version,
                    external=host is not None,
                    host=host,
                    integrity=False,
                    crossorigin=None,
                    wordpress_bundled=True,
                )
            )
            if migrate_version is not None:
                inclusions.append(
                    LibraryInclusion(
                        library="jquery-migrate",
                        version=migrate_version,
                        external=host is not None,
                        host=host,
                        integrity=False,
                        crossorigin=None,
                        wordpress_bundled=True,
                    )
                )

        present = {inc.library for inc in inclusions}
        for membership in self.memberships:
            if membership.library in present:
                continue
            if not membership.active_at(ordinal):
                continue
            inclusions.append(
                LibraryInclusion(
                    library=membership.library,
                    version=membership.version_at(ordinal),
                    external=membership.external,
                    host=membership.host,
                    integrity=membership.integrity,
                    crossorigin=membership.crossorigin,
                    version_visible=membership.version_visible,
                )
            )
            present.add(membership.library)

        flash_usage: Optional[FlashUsage] = None
        if self.flash.active_at(ordinal):
            access, specified = self._flash_model.script_access_at(
                self.flash, ordinal
            )
            flash_usage = FlashUsage(
                swf_url=self._flash_swf,
                external=self.flash.external_swf,
                script_access=access,
                specified=specified,
                visible=self.flash.visible,
            )

        resource_types = set(self.resource_types)
        if flash_usage is not None:
            resource_types.add("flash")

        return SiteManifest(
            domain=self.domain,
            week_ordinal=ordinal,
            wordpress_version=wp_version,
            libraries=tuple(inclusions),
            extra_scripts=self.extra_scripts,
            resource_types=frozenset(resource_types),
            flash=flash_usage,
            vendored=self.vendored,
        )
