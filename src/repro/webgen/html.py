"""Landing-page HTML renderer.

Turns a :class:`~repro.webgen.site.SiteManifest` into the HTML document
the domain serves that week.  Rendering is a pure function of the
manifest, and the URL conventions are co-designed with the fingerprint
engine so that fingerprinting a rendered page recovers the manifest
(tested as a round-trip property).

URL conventions per delivery channel follow the real-world forms the
paper's Section 2.1 describes: versions appear in file names
(``jquery-1.12.4.min.js``), path segments (``/ajax/libs/jquery/1.12.4/``),
``@version`` package specs (jsDelivr/unpkg), or WordPress-style ``?ver=``
query strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .bundles import bundle_chunk
from .site import ExtraScript, FlashUsage, LibraryInclusion, SiteManifest

#: File-name token used for each library in generated URLs.
FILE_TOKENS: Dict[str, str] = {
    "jquery": "jquery",
    "bootstrap": "bootstrap",
    "jquery-migrate": "jquery-migrate",
    "jquery-ui": "jquery-ui",
    "modernizr": "modernizr",
    "js-cookie": "js.cookie",
    "underscore": "underscore",
    "isotope": "isotope.pkgd",
    "popper": "popper",
    "moment": "moment",
    "requirejs": "require",
    "swfobject": "swfobject",
    "prototype": "prototype",
    "jquery-cookie": "jquery.cookie",
    "polyfill": "polyfill",
}

#: Directory names on googleapis-style CDNs.
_GOOGLEAPIS_DIRS: Dict[str, str] = {
    "jquery": "jquery",
    "jquery-ui": "jqueryui",
    "swfobject": "swfobject",
    "prototype": "prototype",
}


def _plain_filename(library: str) -> str:
    return f"{FILE_TOKENS[library]}.min.js"


def _versioned_filename(library: str, version: str) -> str:
    return f"{FILE_TOKENS[library]}-{version}.min.js"


def script_url(inclusion: LibraryInclusion, wordpress_version: Optional[str]) -> str:
    """The ``src`` URL for one library inclusion."""
    library = inclusion.library
    version = inclusion.version

    if inclusion.wordpress_bundled:
        path = f"/wp-includes/js/jquery/{_plain_filename(library)}?ver={version}"
        if inclusion.host is None:
            return path
        core = wordpress_version or "5.0"
        return f"https://{inclusion.host}/c/{core}{path}"

    if inclusion.host is None:
        if not inclusion.version_visible:
            return f"/assets/js/{_plain_filename(library)}"
        return f"/assets/js/{_versioned_filename(library, version)}"

    if not inclusion.version_visible:
        # Version-less delivery: "latest" paths on CDNs, plain vendored
        # copies elsewhere.
        return f"https://{inclusion.host}/latest/{_plain_filename(library)}"

    host = inclusion.host
    if host in ("ajax.googleapis.com", "ajax.aspnetcdn.com"):
        directory = _GOOGLEAPIS_DIRS.get(library, library)
        return f"https://{host}/ajax/libs/{directory}/{version}/{_plain_filename(library)}"
    if host == "code.jquery.com":
        if library == "jquery-ui":
            return f"https://{host}/ui/{version}/jquery-ui.min.js"
        return f"https://{host}/jquery-{version}.min.js"
    if host == "cdnjs.cloudflare.com":
        return f"https://{host}/ajax/libs/{library}/{version}/{_plain_filename(library)}"
    if host in ("maxcdn.bootstrapcdn.com", "stackpath.bootstrapcdn.com"):
        return f"https://{host}/bootstrap/{version}/js/bootstrap.min.js"
    if host in ("cdn.jsdelivr.net",):
        return f"https://{host}/npm/{library}@{version}/dist/{_plain_filename(library)}"
    if host == "unpkg.com":
        return f"https://{host}/{library}@{version}/dist/{_plain_filename(library)}"
    if host in ("polyfill.io", "cdn.polyfill.io"):
        return f"https://{host}/v{version}/polyfill.min.js"
    if host == "widget.trustpilot.com":
        return f"https://{host}/bootstrap/{version}/tp.widget.bootstrap.min.js"
    if host == "momentjs.com":
        return f"https://{host}/downloads/moment-{version}.min.js"
    # Generic CDN / third-party layout: version in the file name (a
    # single-component version like polyfill's "3" is not recognizable
    # as a bare path segment).
    return f"https://{host}/libs/{library}/{_versioned_filename(library, version)}"


def _script_tag(inclusion: LibraryInclusion, wordpress_version: Optional[str]) -> str:
    attrs = [f'src="{script_url(inclusion, wordpress_version)}"']
    if inclusion.integrity:
        attrs.append('integrity="sha384-SIMULATEDSRIDIGESTPLACEHOLDERbase64value0000"')
    if inclusion.crossorigin is not None:
        attrs.append(f'crossorigin="{inclusion.crossorigin}"')
    return f"<script {' '.join(attrs)}></script>"


def _extra_script_tag(script: ExtraScript) -> str:
    attrs = [f'src="{script.url}"']
    if script.integrity:
        attrs.append('integrity="sha384-SIMULATEDSRIDIGESTPLACEHOLDERbase64value0000"')
    return f"<script {' '.join(attrs)}></script>"


def _flash_markup(flash: FlashUsage, rank: int) -> str:
    size = 'width="468" height="60"' if flash.visible else 'width="0" height="0"'
    access_param = ""
    access_attr = ""
    if flash.specified and flash.script_access:
        access_param = (
            f'<param name="AllowScriptAccess" value="{flash.script_access}">'
        )
        access_attr = f' allowscriptaccess="{flash.script_access}"'
    if rank % 10 < 7:
        return (
            f'<object type="application/x-shockwave-flash" {size}>'
            f'<param name="movie" value="{flash.swf_url}">'
            f"{access_param}"
            "</object>"
        )
    return f'<embed src="{flash.swf_url}" type="application/x-shockwave-flash" {size}{access_attr}>'


_FILLER = (
    "<p>Welcome to our website. We provide services, products, news and "
    "community resources for our visitors. Read the latest updates below "
    "and subscribe to our newsletter for more.</p>"
)


def render_page(manifest: SiteManifest) -> str:
    """Render the landing page for one (domain, week) manifest."""
    domain = manifest.domain
    head: List[str] = [
        "<!DOCTYPE html>",
        "<html><head>",
        "<meta charset=\"utf-8\">",
        f"<title>{domain.name} — home</title>",
    ]
    if manifest.wordpress_version:
        head.append(
            f'<meta name="generator" content="WordPress {manifest.wordpress_version}">'
        )
    types = manifest.resource_types
    if "css" in types:
        head.append('<link rel="stylesheet" href="/css/style.css">')
    if "favicon" in types:
        head.append('<link rel="icon" href="/favicon.ico">')
    if "xml" in types:
        head.append(
            '<link rel="alternate" type="application/rss+xml" href="/feed.xml">'
        )

    for inclusion in manifest.libraries:
        head.append(_script_tag(inclusion, manifest.wordpress_version))
    for script in manifest.extra_scripts:
        head.append(_extra_script_tag(script))
    if "imported-html" in types:
        head.append('<script src="/widgets/render.php?section=home"></script>')
    if "axd" in types:
        head.append('<script src="/WebResource.axd?d=pageinit"></script>')
    head.append("</head>")

    body: List[str] = ["<body>", f"<h1>{domain.name}</h1>", _FILLER, _FILLER]
    if "svg" in types:
        body.append('<img src="/img/logo.svg" alt="logo">')
    if manifest.flash is not None:
        body.append(_flash_markup(manifest.flash, domain.rank))
    if "javascript" in types:
        # Vendored bundle chunks: one inline <script> per ingredient (a
        # chunk-split application build), then the site's own bootstrap.
        for vendored in manifest.vendored:
            body.append(f"<script>{bundle_chunk(vendored, domain.rank)}</script>")
        body.append("<script>window.__site={rank:%d};</script>" % domain.rank)
    body.append("</body></html>")
    return "\n".join(head + body)


def render_antibot_page() -> str:
    """The short 200-status block page anti-crawling setups serve."""
    return "<html><body>Not allowed to access.</body></html>"
