"""WordPress platform model.

WordPress matters to the paper in three ways:

* 26.9% of sites run it (Figure 9);
* it *bundles* jQuery and jQuery-Migrate, so platform releases move
  library versions in lock-step: WordPress 5.5 (Aug 2020) disabled
  jQuery-Migrate (the Figure 3(a) dip), 5.6 (Dec 2020) re-enabled it and
  shipped jQuery 3.5.1 (the Figure 7 update wave), and the mid-2021
  release line moved bundles to jQuery 3.6.0 (the Aug 2021 rise);
* its auto-update feature is the paper's "main contributor to updating"
  (Section 7): auto-updating sites adopt new WordPress releases within
  weeks, dragging their bundled libraries along.

The model assigns each WordPress site an initial core version, an
update policy (auto vs manual), and produces a version timeline over the
kept weeks.  :func:`bundled_libraries` maps a core version to the
(jQuery, jQuery-Migrate) bundle.
"""

from __future__ import annotations

import bisect
import datetime
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import PlatformConfig
from ..semver import Version, parse_version
from ..timeline import StudyCalendar, Week

#: WordPress release train during the study: (version, release date).
#: Patch releases are folded into the majors the paper's appendix uses.
WORDPRESS_RELEASES: Tuple[Tuple[str, str], ...] = (
    ("4.7.2", "2017-01-26"),
    ("4.9.8", "2018-08-02"),
    ("5.0.3", "2019-01-09"),
    ("5.1", "2019-02-21"),
    ("5.2.4", "2019-10-14"),
    ("5.3", "2019-11-12"),
    ("5.4.2", "2020-06-10"),
    ("5.5.1", "2020-09-01"),
    ("5.6", "2020-12-08"),
    ("5.7.2", "2021-05-12"),
    ("5.8.1", "2021-09-09"),
    ("5.9", "2022-01-25"),
)

#: Initial WordPress core version mix at the first snapshot (Mar 2018).
_INITIAL_VERSIONS: Tuple[Tuple[str, float], ...] = (
    ("4.1.34", 0.02),
    ("4.7.2", 0.18),
    ("4.9.8", 0.62),
    ("3.7.37", 0.03),
    ("4.9.8", 0.0),  # placeholder weight merged below
    ("5.0.3", 0.0),
    ("4.9.8", 0.15),
)


def _initial_version_table() -> Tuple[Tuple[str, float], ...]:
    merged = {}
    for version, weight in _INITIAL_VERSIONS:
        merged[version] = merged.get(version, 0.0) + weight
    total = sum(merged.values())
    return tuple((v, w / total) for v, w in merged.items() if w > 0)


def bundled_libraries(core_version: str) -> Tuple[str, Optional[str]]:
    """The (jQuery, jQuery-Migrate) bundle of a WordPress core version.

    Returns:
        ``(jquery_version, migrate_version_or_None)``.  ``None`` means
        the platform ships no jQuery-Migrate (WordPress 5.5).
    """
    core = parse_version(core_version)
    if core < Version("5.5"):
        return "1.12.4", "1.4.1"
    if core < Version("5.6"):
        # 5.5 disabled jQuery-Migrate by default.
        return "1.12.4", None
    if core < Version("5.8"):
        return "3.5.1", "3.3.2"
    return "3.6.0", "3.3.2"


class WordPressModel:
    """Per-site WordPress assignment and version timelines."""

    def __init__(self, config: PlatformConfig, calendar: StudyCalendar) -> None:
        self.config = config
        self.calendar = calendar
        self._initial = _initial_version_table()
        self._releases: List[Tuple[datetime.date, str]] = sorted(
            (datetime.date.fromisoformat(d), v) for v, d in WORDPRESS_RELEASES
        )

    # ------------------------------------------------------------------
    # Site-level sampling
    # ------------------------------------------------------------------
    def uses_wordpress(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.config.wordpress_share)

    def is_auto_updating(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.config.auto_update_share)

    def uses_bundled_jquery(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.config.bundled_jquery_share)

    def initial_version(self, rng: np.random.Generator) -> str:
        versions = [v for v, _ in self._initial]
        weights = np.array([w for _, w in self._initial])
        return versions[int(rng.choice(len(versions), p=weights / weights.sum()))]

    def latest_release_as_of(self, date: datetime.date) -> Optional[str]:
        index = bisect.bisect_right([d for d, _ in self._releases], date)
        if index == 0:
            return None
        return self._releases[index - 1][1]

    # ------------------------------------------------------------------
    # Timelines
    # ------------------------------------------------------------------
    def version_timeline(
        self,
        rng: np.random.Generator,
        auto_update: bool,
        laggard_hazard: float = 0.006,
    ) -> List[Tuple[int, str]]:
        """Core version changes as ``(kept-week ordinal, version)``.

        Auto-updating sites adopt each new release after a short random
        lag; manual sites refresh with a small weekly hazard, jumping to
        the then-latest release.
        """
        weeks: Sequence[Week] = self.calendar.weeks
        start_version = self.initial_version(rng)
        timeline: List[Tuple[int, str]] = [(0, start_version)]
        current = parse_version(start_version)

        if auto_update:
            for release_date, version in self._releases:
                if release_date < weeks[0].date:
                    continue
                if release_date > weeks[-1].date:
                    break
                lag_weeks = int(rng.poisson(self.config.auto_update_lag_weeks))
                adoption_date = release_date + datetime.timedelta(weeks=lag_weeks)
                week = self.calendar.week_for_date(adoption_date)
                if adoption_date > weeks[-1].date:
                    continue
                if parse_version(version) > current:
                    timeline.append((week.ordinal, version))
                    current = parse_version(version)
            return timeline

        ordinal = 0
        while True:
            gap = int(rng.geometric(laggard_hazard))
            ordinal += gap
            if ordinal >= len(weeks):
                break
            latest = self.latest_release_as_of(weeks[ordinal].date)
            if latest is not None and parse_version(latest) > current:
                timeline.append((ordinal, latest))
                current = parse_version(latest)
        return timeline

    @staticmethod
    def version_at(timeline: Sequence[Tuple[int, str]], ordinal: int) -> str:
        """The version in effect at a kept-week ordinal."""
        version = timeline[0][1]
        for change_ordinal, changed_version in timeline:
            if change_ordinal <= ordinal:
                version = changed_version
            else:
                break
        return version
