"""Library usage profiles calibrated to the paper's Tables 1 and 5.

Each :class:`LibraryProfile` carries everything the site generator needs
to make one library's ecosystem-wide statistics come out right:

* usage share at the first and last snapshot (Figure 3 trends);
* inclusion mix: internal vs external, and the CDN host distribution of
  external inclusions (Tables 1 and 5);
* the initial version distribution among sites using the library at the
  first snapshot (whose weights reproduce the per-range site
  percentages of Table 2 and the dominant versions of Table 1).

jQuery and jQuery-Migrate have *organic* shares here; the
WordPress-bundled copies are added by the platform model on top, so the
totals land on the paper's 64.0% / 20.8%.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Tuple

#: Average share of sites using each generic resource type — the paper's
#: Figure 2(b) (Flash is dynamic and handled by the Flash model).
RESOURCE_TYPE_SHARES: Mapping[str, float] = {
    "javascript": 0.947,
    "css": 0.884,
    "favicon": 0.550,
    "imported-html": 0.318,
    "xml": 0.256,
    "svg": 0.021,
    "axd": 0.008,
}

#: A generic, non-catalogued CDN used for the share of external
#: inclusions not attributable to a Table 5 host.
GENERIC_CDN = "cdn.static-assets.net"

#: A generic non-CDN third-party host (external but not via CDN).
GENERIC_THIRD_PARTY = "assets.partner-widgets.com"


@dataclasses.dataclass(frozen=True)
class LibraryProfile:
    """Generation parameters for one library.

    Attributes:
        name: Canonical library name.
        share_start: Fraction of sites using the library at week 0.
        share_end: Fraction at the final week (linear interpolation).
        internal_fraction: Fraction of inclusions hosted same-origin.
        cdn_fraction: Of external inclusions, fraction via known CDNs.
        cdn_hosts: Relative weights of CDN hostnames (Table 5).
        initial_versions: Relative weights of versions among users at
            week 0.
        discontinued: Project no longer maintained (Table 1 footnote 7).
        migrates_to: Library users migrate to when dropping this one
            (jquery-cookie -> js-cookie).
        requires: Library that must also be present (popper -> bootstrap
            correlation is expressed here as a soft dependency).
    """

    name: str
    share_start: float
    share_end: float
    internal_fraction: float
    cdn_fraction: float
    cdn_hosts: Tuple[Tuple[str, float], ...]
    initial_versions: Tuple[Tuple[str, float], ...]
    discontinued: bool = False
    migrates_to: Optional[str] = None
    requires: Optional[str] = None
    #: Fraction of inclusions whose URL exposes the version (Wappalyzer
    #: cannot read the rest).  Calibrated per library from the affected
    #: percentages of Table 2 (e.g. CVE-2019-8331 covers essentially all
    #: pre-2019 Bootstrap yet matched only 27.7% of Bootstrap sites).
    version_visible_rate: float = 0.70

    @property
    def trending_up(self) -> bool:
        return self.share_end > self.share_start


def _profile(
    name: str,
    share_start: float,
    share_end: float,
    internal: float,
    cdn: float,
    cdn_hosts: Dict[str, float],
    versions: Dict[str, float],
    **kwargs: object,
) -> LibraryProfile:
    return LibraryProfile(
        name=name,
        share_start=share_start,
        share_end=share_end,
        internal_fraction=internal,
        cdn_fraction=cdn,
        cdn_hosts=tuple(cdn_hosts.items()),
        initial_versions=tuple(versions.items()),
        **kwargs,  # type: ignore[arg-type]
    )


def library_profiles() -> Dict[str, LibraryProfile]:
    """Profiles for the paper's top-15 libraries, keyed by name."""
    profiles = [
        # jQuery: organic share only; WordPress bundling adds ~16.7%.
        _profile(
            "jquery", 0.578, 0.532, 0.592, 0.961,
            {
                "ajax.googleapis.com": 26.0,
                "code.jquery.com": 10.0,
                "cdnjs.cloudflare.com": 7.1,
                GENERIC_CDN: 49.0,
            },
            {
                # < 1.9.0 tail (Table 2: 12.2% of jQuery users).
                "1.3.2": 1.2, "1.4.2": 0.7, "1.6.2": 0.5, "1.7.1": 2.9,
                "1.7.2": 2.3, "1.8.2": 1.7, "1.8.3": 2.9,
                "1.9.0": 0.3, "1.9.1": 2.3, "1.10.2": 2.7,
                "1.11.0": 2.0, "1.11.1": 2.7, "1.11.3": 3.5,
                # Organic 1.12.4 on top of the WordPress-bundled mass.
                "1.12.4": 9.0,
                "2.0.3": 1.2, "2.1.1": 1.8, "2.1.4": 2.9, "2.2.4": 3.7,
                "3.0.0": 1.9, "3.1.1": 3.1, "3.2.1": 5.6, "3.3.1": 16.6,
            },
            version_visible_rate=0.62,
        ),
        _profile(
            "bootstrap", 0.228, 0.201, 0.716, 0.707,
            {
                "maxcdn.bootstrapcdn.com": 33.6,
                "widget.trustpilot.com": 10.0,
                "stackpath.bootstrapcdn.com": 9.7,
                GENERIC_CDN: 17.4,
            },
            {
                # March 2018 state: the 3.3.x line dominates, 4.0.0 is
                # freshly released (4.1+ arrives during the study via
                # updates).
                "2.3.2": 3.0, "3.0.0": 2.0, "3.1.1": 3.5, "3.2.0": 4.5,
                "3.3.5": 6.0, "3.3.6": 8.0, "3.3.7": 52.0,
                "4.0.0": 14.0,
            },
            requires="jquery",
            version_visible_rate=0.34,
        ),
        # jQuery-Migrate: organic share only; WordPress adds the rest.
        _profile(
            "jquery-migrate", 0.045, 0.040, 0.70, 0.40,
            {
                "cdnjs.cloudflare.com": 4.5,
                "secureservercdn.net": 2.3,
                GENERIC_CDN: 10.0,
            },
            {"1.2.1": 12.0, "1.4.0": 6.0, "1.4.1": 70.0, "3.0.0": 8.0, "3.0.1": 4.0},
            requires="jquery",
            version_visible_rate=0.66,
        ),
        _profile(
            "jquery-ui", 0.128, 0.114, 0.497, 0.919,
            {
                "ajax.googleapis.com": 49.6,
                "code.jquery.com": 30.7,
                "cdnjs.cloudflare.com": 4.2,
                GENERIC_CDN: 7.0,
            },
            {
                "1.8.24": 3.0, "1.9.2": 3.0, "1.10.3": 6.0, "1.10.4": 9.0,
                "1.11.2": 6.0, "1.11.4": 17.0, "1.12.0": 5.0, "1.12.1": 51.0,
            },
            requires="jquery",
            version_visible_rate=0.63,
        ),
        _profile(
            "modernizr", 0.102, 0.086, 0.781, 0.682,
            {
                "cdnjs.cloudflare.com": 32.4,
                "cdn.shopify.com": 21.8,
                "cdn.prestosports.com": 1.0,
                GENERIC_CDN: 13.0,
            },
            {
                "2.0.6": 3.0, "2.5.3": 5.0, "2.6.2": 34.0, "2.7.1": 9.0,
                "2.8.3": 26.0, "3.0.0": 5.0, "3.3.1": 6.0, "3.5.0": 8.0,
                "3.6.0": 4.0,
            },
            version_visible_rate=0.60,
        ),
        _profile(
            "js-cookie", 0.024, 0.047, 0.805, 0.865,
            {
                "cdn.jsdelivr.net": 21.1,
                "c0.wp.com": 12.3,
                "cdnjs.cloudflare.com": 11.5,
                GENERIC_CDN: 40.0,
            },
            {"2.0.0": 2.0, "2.1.0": 3.0, "2.1.3": 4.0, "2.1.4": 86.0, "2.2.0": 5.0},
            version_visible_rate=0.75,
        ),
        _profile(
            "underscore", 0.019, 0.032, 0.832, 0.497,
            {
                "c0.wp.com": 20.5,
                "cdnjs.cloudflare.com": 13.3,
                "secureservercdn.net": 1.5,
                GENERIC_CDN: 14.0,
            },
            {
                "1.4.4": 4.0, "1.5.2": 6.0, "1.6.0": 9.0, "1.7.0": 11.0,
                "1.8.2": 7.0, "1.8.3": 52.0, "1.9.1": 11.0,
            },
            version_visible_rate=0.12,
        ),
        _profile(
            "isotope", 0.020, 0.016, 0.908, 0.246,
            {
                "secureservercdn.net": 3.3,
                "cdn.shopify.com": 2.1,
                "cdn.jsdelivr.net": 0.8,
                GENERIC_CDN: 18.0,
            },
            {
                "1.5.25": 4.0, "2.0.0": 6.0, "2.2.2": 14.0, "3.0.0": 7.0,
                "3.0.3": 9.0, "3.0.4": 40.0, "3.0.5": 10.0, "3.0.6": 10.0,
            },
        ),
        _profile(
            "popper", 0.009, 0.026, 0.469, 0.920,
            {
                "cdnjs.cloudflare.com": 77.3,
                "cdn.jsdelivr.net": 9.0,
                "unpkg.com": 2.1,
                GENERIC_CDN: 3.6,
            },
            {"1.12.9": 18.0, "1.14.3": 62.0, "1.14.7": 20.0},
            requires="bootstrap",
        ),
        _profile(
            "moment", 0.017, 0.015, 0.704, 0.716,
            {
                "cdnjs.cloudflare.com": 51.8,
                "cdn.jsdelivr.net": 6.1,
                "momentjs.com": 1.7,
                GENERIC_CDN: 12.0,
            },
            {
                "2.10.6": 8.0, "2.11.2": 5.0, "2.13.0": 6.0, "2.15.2": 9.0,
                "2.17.1": 10.0, "2.18.1": 27.0, "2.19.3": 8.0, "2.20.1": 13.0,
                "2.22.2": 14.0,
            },
            version_visible_rate=0.40,
        ),
        _profile(
            "requirejs", 0.017, 0.015, 0.648, 0.281,
            {GENERIC_CDN: 28.1},
            {"2.1.22": 12.0, "2.2.0": 14.0, "2.3.2": 16.0, "2.3.5": 16.0, "2.3.6": 42.0},
        ),
        _profile(
            "swfobject", 0.016, 0.010, 0.742, 0.633,
            {
                "ajax.googleapis.com": 49.1,
                "cdnjs.cloudflare.com": 3.0,
                "s0.wp.com": 2.6,
                GENERIC_CDN: 8.6,
            },
            {"1.5": 8.0, "2.0": 10.0, "2.1": 25.0, "2.2": 57.0},
            discontinued=True,
        ),
        _profile(
            "prototype", 0.011, 0.009, 0.812, 0.579,
            {
                "ajax.googleapis.com": 27.7,
                "strato-editor.com": 3.7,
                "cdnjs.cloudflare.com": 2.2,
                GENERIC_CDN: 24.3,
            },
            {
                "1.6.0.3": 6.0, "1.6.1": 14.0, "1.7.0": 12.0, "1.7.1": 48.0,
                "1.7.2": 10.0, "1.7.3": 10.0,
            },
            discontinued=True,
            version_visible_rate=0.90,
        ),
        _profile(
            "jquery-cookie", 0.013, 0.008, 0.633, 0.865,
            {
                "cdnjs.cloudflare.com": 62.6,
                "cdn.shopify.com": 8.4,
                "c0.wp.com": 0.9,
                GENERIC_CDN: 14.6,
            },
            {"1.0": 4.0, "1.3.1": 10.0, "1.4.0": 16.0, "1.4.1": 70.0},
            discontinued=True,
            migrates_to="js-cookie",
            requires="jquery",
        ),
        _profile(
            "polyfill", 0.006, 0.013, 0.145, 0.378,
            {
                "polyfill.io": 45.4,
                "cdn.polyfill.io": 30.8,
                "static.parastorage.com": 4.1,
                GENERIC_CDN: 2.0,
            },
            {"2": 28.0, "3": 72.0},
        ),
    ]
    return {p.name: p for p in profiles}


#: The paper's Table 1 ordering (by average usage).
TOP15_ORDER: Tuple[str, ...] = (
    "jquery",
    "bootstrap",
    "jquery-migrate",
    "jquery-ui",
    "modernizr",
    "js-cookie",
    "underscore",
    "isotope",
    "popper",
    "moment",
    "requirejs",
    "swfobject",
    "prototype",
    "jquery-cookie",
    "polyfill",
)
