"""The domain population: an Alexa-style ranked list with reachability.

Domains get deterministic names, a rank (1 = most popular), and a
reachability profile drawn from the scenario's
:class:`~repro.config.AccessibilityConfig` — the source of the paper's
"average 782,300 of 1M collected each week" and of the domains its
filter removes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import AccessibilityConfig

_TLDS = (".com", ".net", ".org", ".io", ".co", ".info", ".ru", ".de", ".cn", ".jp")
_TLD_WEIGHTS = (0.42, 0.10, 0.09, 0.06, 0.05, 0.04, 0.08, 0.06, 0.06, 0.04)


class Reachability(enum.Enum):
    """How a domain behaves to the crawler over the study."""

    STABLE = "stable"
    FLAKY = "flaky"
    ANTIBOT = "antibot"
    DIES = "dies"
    DEAD = "dead"


@dataclasses.dataclass(frozen=True)
class Domain:
    """One ranked domain.

    Attributes:
        rank: Alexa-style rank, 1-based.
        name: Hostname (e.g. ``site000017.example-17.com``).
        reachability: Crawl-facing behaviour class.
        death_week: Kept-week ordinal at which a ``DIES`` domain stops
            resolving; None otherwise.
    """

    rank: int
    name: str
    reachability: Reachability
    death_week: Optional[int] = None

    @property
    def tier(self) -> str:
        """Popularity tier: ``top1k``, ``top10k``, ``top100k``, ``rest``."""
        if self.rank <= 1_000:
            return "top1k"
        if self.rank <= 10_000:
            return "top10k"
        if self.rank <= 100_000:
            return "top100k"
        return "rest"

    def alive_at(self, week_ordinal: int) -> bool:
        if self.reachability is Reachability.DEAD:
            return False
        if self.reachability is Reachability.DIES:
            return self.death_week is None or week_ordinal < self.death_week
        return True


def _domain_name(rank: int, rng: np.random.Generator) -> str:
    tld = _TLDS[int(rng.choice(len(_TLDS), p=_TLD_WEIGHTS))]
    return f"site{rank:07d}{tld}"


class DomainPopulation:
    """The full ranked domain list for one scenario.

    Args:
        size: Number of domains (rank 1..size).
        accessibility: Reachability mix.
        rng: Seeded generator; consumed deterministically.
        total_weeks: Number of kept snapshot weeks (bounds death weeks).
    """

    def __init__(
        self,
        size: int,
        accessibility: AccessibilityConfig,
        rng: np.random.Generator,
        total_weeks: int,
    ) -> None:
        self.size = size
        self.accessibility = accessibility
        draws = rng.random(size)
        death_draws = rng.integers(1, max(2, total_weeks), size=size)
        acc = accessibility
        domains: List[Domain] = []
        # Lower-ranked domains are less stable (the paper observed
        # instability concentrated in the tail), so weight the dead /
        # dying probability by rank percentile.
        for index in range(size):
            rank = index + 1
            percentile = rank / size  # 0 (top) .. 1 (tail)
            dead_p = acc.initially_dead * (0.4 + 1.2 * percentile)
            dies_p = acc.dies_during_study * (0.4 + 1.2 * percentile)
            antibot_p = acc.antibot
            flaky_p = acc.flaky * (0.5 + percentile)
            draw = draws[index]
            death_week: Optional[int] = None
            if draw < dead_p:
                kind = Reachability.DEAD
            elif draw < dead_p + dies_p:
                kind = Reachability.DIES
                death_week = int(death_draws[index])
            elif draw < dead_p + dies_p + antibot_p:
                kind = Reachability.ANTIBOT
            elif draw < dead_p + dies_p + antibot_p + flaky_p:
                kind = Reachability.FLAKY
            else:
                kind = Reachability.STABLE
            domains.append(
                Domain(
                    rank=rank,
                    name=_domain_name(rank, rng),
                    reachability=kind,
                    death_week=death_week,
                )
            )
        self._domains: Tuple[Domain, ...] = tuple(domains)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Domain]:
        return iter(self._domains)

    def __getitem__(self, index: int) -> Domain:
        return self._domains[index]

    @property
    def domains(self) -> Tuple[Domain, ...]:
        return self._domains

    def by_name(self, name: str) -> Optional[Domain]:
        # Names embed the rank, so this is O(1) without an index.
        if name.startswith("site"):
            try:
                rank = int(name[4:11])
            except ValueError:
                return None
            if 1 <= rank <= self.size and self._domains[rank - 1].name == name:
                return self._domains[rank - 1]
        return None

    def in_tier(self, tier: str) -> Tuple[Domain, ...]:
        return tuple(d for d in self._domains if d.tier == tier)

    def alive_count(self, week_ordinal: int) -> int:
        """Domains that resolve at the given kept-week ordinal."""
        return sum(1 for d in self._domains if d.alive_at(week_ordinal))
