"""Libraries served from collaborative-VCS hosting (Table 6).

The paper found an average of 1,670 sites loading JavaScript straight
from 57 GitHub-pages repositories — with ``wp-r.github.io`` alone
accounting for 11.3% — and almost none of them using SRI.  This module
carries the repository/script catalog used to decorate sites that do
this.
"""

from __future__ import annotations

from typing import Tuple

#: (script URL, relative popularity weight) — drawn from the paper's
#: Table 6.  Weights reflect the reported per-repository site counts.
GITHUB_SCRIPTS: Tuple[Tuple[str, float], ...] = (
    ("https://wp-r.github.io/adsplacer/adsplacer.min.js", 6.0),
    ("https://wp-r.github.io/jquery.iframetracker/jquery.iframetracker.js", 5.3),
    ("https://partnercoll.github.io/actualize.js", 4.0),
    ("https://kodir2.github.io/actualize.js", 2.0),
    ("https://malsup.github.com/jquery.form.js", 2.0),
    ("https://blueimp.github.io/jQuery-File-Upload/js/vendor/jquery.ui.widget.js", 2.0),
    ("https://afarkas.github.io/lazysizes/lazysizes.min.js", 2.0),
    ("https://gitcdn.github.io/bootstrap-toggle/2.2.2/js/bootstrap-toggle.min.js", 2.0),
    ("https://owlcarousel2.github.io/OwlCarousel2/dist/owl.carousel.js", 2.0),
    ("https://hammerjs.github.io/dist/hammer.min.js", 1.0),
    ("https://kenwheeler.github.io/slick/slick/slick.js", 1.0),
    ("https://weblion777.github.io/hdvb.js", 1.0),
    ("https://actlz.github.io/actualize.js", 1.0),
    ("https://malihu.github.io/custom-scrollbar/jquery.mCustomScrollbar.concat.min.js", 1.0),
    ("https://radioafricagroup.github.io/assets/cookiestrip.min.js", 1.0),
    ("https://radioafricagroup.github.io/assets/jquery.popup.js", 1.0),
    ("https://klevron.github.io/threejs/OrbitControls.js", 1.0),
    ("https://jonathantneal.github.io/svg4everybody/dist/svg4everybody.min.js", 1.0),
    ("https://hayageek.github.io/jQuery-Upload-File/4.0.11/jquery.uploadfile.min.js", 1.0),
    ("https://assets-cdn.github.com/assets/compat-432e5a3c.js", 1.0),
    ("https://blueimp.github.io/JavaScript-Templates/js/tmpl.min.js", 0.5),
    ("https://blueimp.github.io/JavaScript-Load-Image/js/load-image.all.min.js", 0.5),
    ("https://blueimp.github.io/jQuery-File-Upload/js/jquery.fileupload.js", 0.5),
    ("https://blueimp.github.io/jQuery-File-Upload/js/jquery.iframe-transport.js", 0.5),
)
