"""Synthetic web ecosystem.

The substitution for the paper's unrecoverable four-year Alexa-1M crawl:
a seeded generator producing a domain population whose landing pages —
and their evolution across the 201 weekly snapshots — reproduce the
published marginals and dynamics (library usage shares and trends,
version mixes, inclusion types, CDN delivery, SRI adoption, WordPress
platform effects, and Adobe Flash decay).

Public API: :class:`WebEcosystem` (build from a
:class:`~repro.config.ScenarioConfig`), which exposes ground-truth
:class:`SiteManifest` objects per (domain, week), renders landing-page
HTML, and wires every domain plus the CDN hosts onto a
:class:`~repro.netsim.VirtualNetwork`.
"""

from .domains import Domain, DomainPopulation, Reachability
from .libraries import LibraryProfile, library_profiles, RESOURCE_TYPE_SHARES
from .site import LibraryInclusion, SiteManifest, FlashUsage
from .ecosystem import WebEcosystem

__all__ = [
    "Domain",
    "DomainPopulation",
    "Reachability",
    "LibraryProfile",
    "library_profiles",
    "RESOURCE_TYPE_SHARES",
    "SiteManifest",
    "LibraryInclusion",
    "FlashUsage",
    "WebEcosystem",
]
