"""Canonical library file contents.

The paper's Section 9 validity experiment downloads every JavaScript
library file from a fresh Alexa-100K snapshot and compares file hashes
against the official distributions, finding that the only mismatches
were whitespace/comment edits, never manual security patches.

This module provides the "official distribution": a deterministic body
for every (library, version) pair, plus mutators producing the benign
whitespace-variant copies some sites self-host.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

_LICENSE = "Released under the MIT license"


def official_content(library: str, version: str) -> bytes:
    """The canonical file body for a library release.

    Deterministic, unique per (library, version), and carrying the
    banner-comment form real distributions use (which also lets the
    fingerprint engine's inline-banner patterns match).
    """
    digest = hashlib.sha256(f"{library}|{version}".encode()).hexdigest()
    banner = f"/*! {library} v{version} | {_LICENSE} */"
    body = (
        f"{banner}\n"
        f"(function(global){{'use strict';\n"
        f"  var LIB_ID='{digest[:16]}';\n"
        f"  var VERSION='{version}';\n"
        f"  function init(){{return {{id:LIB_ID,version:VERSION}};}}\n"
        f"  global['{library.replace('-', '_')}']=init();\n"
        f"}})(typeof window!=='undefined'?window:this);\n"
    )
    return body.encode("utf-8")


def official_hash(library: str, version: str) -> str:
    """SHA-256 hex digest of the official file body."""
    return hashlib.sha256(official_content(library, version)).hexdigest()


def whitespace_variant(library: str, version: str, flavor: int = 0) -> bytes:
    """A benign locally-modified copy (extra newlines / edited comment).

    These are the only kinds of modification the paper observed in the
    wild — no manual security patches.
    """
    base = official_content(library, version).decode("utf-8")
    if flavor % 3 == 0:
        mutated = base + "\n\n"
    elif flavor % 3 == 1:
        mutated = base.replace("/*!", "/* locally mirrored:", 1)
    else:
        mutated = base.replace("\n", "\n\n", 1) + " "
    return mutated.encode("utf-8")


class CdnContentStore:
    """Lazy content registry for CDN virtual hosts."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str], bytes] = {}
        self.lookups = 0

    def get(self, library: str, version: str) -> bytes:
        self.lookups += 1
        key = (library, version)
        body = self._cache.get(key)
        if body is None:
            body = official_content(library, version)
            self._cache[key] = body
        return body

    def __len__(self) -> int:
        return len(self._cache)
