"""The assembled web ecosystem: domains, sites, CDNs, and the network.

:class:`WebEcosystem` builds the full scenario — a ranked domain
population with per-site four-year behaviours — and wires it onto a
:class:`~repro.netsim.VirtualNetwork`:

* every live domain gets a virtual host serving its landing page for the
  network's current week (plus its internally-hosted library files, so
  the Section 9 hash audit can download them);
* the CDN hosts of Table 5 serve canonical library file bodies;
* GitHub-pages hosts and the swf host serve their content;
* reachability pathologies (dead/dying/flaky/anti-bot domains) are
  injected per the scenario's accessibility model.

Ground truth is available without the network through
:meth:`WebEcosystem.manifest` — the crawl + fingerprint pipeline must
recover it (a tested round-trip property).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..config import ScenarioConfig
from ..fingerprint.signatures import LibrarySignature, default_signatures
from ..netsim import (
    FailureModel,
    HttpRequest,
    HttpResponse,
    VirtualNetwork,
    text_response,
)
from ..netsim.network import HostCondition
from ..netsim.server import not_found
from .cdncontent import CdnContentStore, whitespace_variant
from .domains import Domain, DomainPopulation, Reachability
from .flashgen import FlashModel
from .html import render_antibot_page, render_page
from .libraries import GENERIC_CDN, GENERIC_THIRD_PARTY
from .platform import WordPressModel
from .site import SiteManifest, SiteState
from ..fingerprint.cdn import DEFAULT_CDN_HOSTS

_SWF_HOST = "media.swf-hosting.net"
_GITHUB_HOSTS = (
    "wp-r.github.io",
    "partnercoll.github.io",
    "kodir2.github.io",
    "malsup.github.com",
    "blueimp.github.io",
    "afarkas.github.io",
    "gitcdn.github.io",
    "owlcarousel2.github.io",
    "hammerjs.github.io",
    "kenwheeler.github.io",
    "weblion777.github.io",
    "actlz.github.io",
    "malihu.github.io",
    "radioafricagroup.github.io",
    "klevron.github.io",
    "jonathantneal.github.io",
    "hayageek.github.io",
    "assets-cdn.github.com",
)


class _LibraryUrlMatcher:
    """Maps a served URL back to (library, version) via the signatures."""

    def __init__(self) -> None:
        self._signatures: Tuple[LibrarySignature, ...] = tuple(default_signatures())

    def match(self, path: str, query: str) -> Optional[Tuple[str, Optional[str]]]:
        filename = path.rsplit("/", 1)[-1]
        for signature in self._signatures:
            if signature.host_pattern is not None:
                continue  # host-scoped signatures need the host; skip
            result = signature.match_url(None, path, query, filename)
            if result is not None:
                version, _ = result
                return signature.library, version
        return None


class _CdnHost:
    """A CDN endpoint serving canonical library bodies."""

    def __init__(self, hostname: str, store: CdnContentStore, matcher: _LibraryUrlMatcher) -> None:
        self.hostname = hostname
        self._store = store
        self._matcher = matcher

    def handle(self, request: HttpRequest) -> HttpResponse:
        matched = self._matcher.match(request.url.path, request.url.query)
        if matched is None:
            return not_found(request.url.path)
        library, version = matched
        return text_response(
            self._store.get(library, version or "latest"),
            content_type="application/javascript",
        )


class _GithubHost:
    """A GitHub-pages host serving arbitrary repository scripts."""

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname

    def handle(self, request: HttpRequest) -> HttpResponse:
        body = f"/* {self.hostname}{request.url.path} */\n(function(){{}})();\n"
        return text_response(body, content_type="application/javascript")


class _SwfHost:
    """Serves Flash movie bytes (FWS magic)."""

    def handle(self, request: HttpRequest) -> HttpResponse:
        body = b"FWS\x09" + request.url.path.encode("utf-8")
        return text_response(body, content_type="application/x-shockwave-flash")


class _DomainHost:
    """One domain's web server: landing page + internally hosted assets."""

    def __init__(self, ecosystem: "WebEcosystem", domain: Domain) -> None:
        self._ecosystem = ecosystem
        self.domain = domain

    def handle(self, request: HttpRequest) -> HttpResponse:
        eco = self._ecosystem
        ordinal = eco.network.clock
        if self.domain.reachability is Reachability.ANTIBOT:
            return text_response(render_antibot_page(), status=200)
        path = request.url.path
        if path == "/" or path == "/index.html":
            return text_response(eco.landing_page(self.domain, ordinal))
        if path.endswith(".js"):
            return self._serve_asset(path, request.url.query, ordinal)
        if path in ("/css/style.css", "/favicon.ico", "/feed.xml", "/img/logo.svg"):
            return text_response(f"/* {path} */", content_type="text/plain")
        if path.endswith(".swf"):
            return text_response(
                b"FWS\x09local", content_type="application/x-shockwave-flash"
            )
        return not_found(path)

    def _serve_asset(self, path: str, query: str, ordinal: int) -> HttpResponse:
        matched = self._ecosystem._matcher.match(path, query)
        if matched is None or matched[1] is None:
            return text_response("(function(){})();", content_type="application/javascript")
        library, version = matched
        state = self._ecosystem.site_state(self.domain)
        if state.mirrors_modified:
            body = whitespace_variant(library, version, flavor=self.domain.rank)
        else:
            body = self._ecosystem.cdn_content.get(library, version)
        return text_response(body, content_type="application/javascript")


class WebEcosystem:
    """The full synthetic ecosystem for one scenario."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.calendar = config.calendar
        rng = np.random.default_rng([config.seed, 0xEC0])
        self.population = DomainPopulation(
            config.population, config.accessibility, rng, total_weeks=len(self.calendar)
        )
        self.wordpress_model = WordPressModel(config.platform, self.calendar)
        self.flash_model = FlashModel(config.flash, self.calendar)
        self.cdn_content = CdnContentStore()
        self._matcher = _LibraryUrlMatcher()
        self._sites: Dict[int, SiteState] = {}
        from .libraries import library_profiles
        from ..semver import builtin_catalogs

        self._profiles = library_profiles()
        self._catalogs = builtin_catalogs()
        self.network = VirtualNetwork(failures=FailureModel(seed=config.seed))
        self._attach_hosts()
        self._current_week = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _attach_hosts(self) -> None:
        acc = self.config.accessibility
        self._death_schedule: Dict[int, List[str]] = {}
        for domain in self.population:
            if domain.reachability is Reachability.DEAD:
                continue
            if domain.reachability is Reachability.DIES and domain.death_week is not None:
                self._death_schedule.setdefault(domain.death_week, []).append(
                    domain.name
                )
            self.network.attach(domain.name, _DomainHost(self, domain))
            if domain.reachability is Reachability.FLAKY:
                self.network.failures.set_condition(
                    domain.name,
                    HostCondition(
                        connect_failure_rate=acc.flaky_failure_rate * 0.6,
                        timeout_rate=acc.flaky_failure_rate * 0.4,
                        server_error_rate=acc.flaky_server_error_rate,
                    ),
                )
        cdn_hosts = set(DEFAULT_CDN_HOSTS) | {GENERIC_CDN, GENERIC_THIRD_PARTY}
        for host in sorted(cdn_hosts):
            self.network.attach(host, _CdnHost(host, self.cdn_content, self._matcher))
        for host in _GITHUB_HOSTS:
            self.network.attach(host, _GithubHost(host))
        self.network.attach(_SWF_HOST, _SwfHost())

    # ------------------------------------------------------------------
    # Site state & ground truth
    # ------------------------------------------------------------------
    def site_state(self, domain: Domain) -> SiteState:
        """The (lazily built, cached) behaviour state of one domain."""
        state = self._sites.get(domain.rank)
        if state is None:
            state = SiteState(
                domain,
                self.config,
                self.wordpress_model,
                self.flash_model,
                profiles=self._profiles,
                catalogs=self._catalogs,
            )
            # A small share of self-hosting sites serve whitespace-edited
            # mirrors (Section 9's hash-audit finding).
            mirror_rng = np.random.default_rng([self.config.seed, domain.rank, 0x31])
            state.mirrors_modified = bool(mirror_rng.random() < 0.015)
            self._sites[domain.rank] = state
        return state

    def manifest(self, domain: Domain, week_ordinal: int) -> SiteManifest:
        """Ground-truth landing-page contents for (domain, week)."""
        return self.site_state(domain).manifest(week_ordinal)

    def landing_page(self, domain: Domain, week_ordinal: int) -> str:
        """Rendered landing-page HTML for (domain, week)."""
        return render_page(self.manifest(domain, week_ordinal))

    # ------------------------------------------------------------------
    # Time control
    # ------------------------------------------------------------------
    def set_week(self, week_ordinal: int) -> None:
        """Advance the ecosystem (and network clock) to a kept week.

        Domains whose death week has passed stop resolving.
        """
        self.network.set_clock(week_ordinal)
        for week, names in self._death_schedule.items():
            if week <= week_ordinal:
                for name in names:
                    if name in self.network:
                        self.network.detach(name)
            else:
                # Support rewinding (the accessibility prefilter probes
                # the last month before the main crawl starts).
                for name in names:
                    if name not in self.network:
                        domain = self.population.by_name(name)
                        if domain is not None:
                            self.network.attach(name, _DomainHost(self, domain))
        self._current_week = week_ordinal

    @property
    def current_week(self) -> int:
        return self._current_week

    def iter_domains(self) -> Iterator[Domain]:
        return iter(self.population)
