"""Vendored application bundles ("Insecure Ingredients" scenario pack).

A bundled site ships a built JavaScript application that *vendors*
copies of libraries pinned at bundle-build time.  No ``<script src>``
reveals the ingredient: the only fingerprintable trace is the library's
banner comment surviving minification inside the inline bundle chunk —
exactly the engine's inline-banner channel.  Undetectable ingredients
(banner stripped) exist only in generation ground truth; the crawl never
sees them, which is the point of the scenario.

Everything here is a pure function of the scenario seed and
:class:`~repro.config.BundlingConfig`; the sampling draws come from a
dedicated RNG stream (``0xB17D``) so enabling bundling never perturbs
the baseline site draws.
"""

from __future__ import annotations

import dataclasses
import datetime
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import BundlingConfig
from ..semver import ReleaseCatalog

#: Banner comment templates per vendorable library: (versioned form,
#: versionless form or None).  Each versioned form matches the library's
#: ``inline_pattern`` in :mod:`repro.fingerprint.signatures` and yields
#: exactly the interpolated version; a versionless form matches with no
#: version group.  Libraries whose inline pattern *requires* a version
#: have no versionless form — when such an ingredient's version is
#: hidden, the banner is unrecognizable and the ingredient goes fully
#: undetected.
BUNDLE_BANNERS: Dict[str, Tuple[str, Optional[str]]] = {
    "jquery": ("/*! jQuery JavaScript Library v{version} | jquery.org/license */", None),
    "jquery-migrate": ("/*! jQuery Migrate v{version} | jquery.org/license */", "/*! jQuery Migrate | jquery.org/license */"),
    "jquery-ui": ("/*! jQuery UI - v{version} | jqueryui.com */", "/*! jQuery UI | jqueryui.com */"),
    "bootstrap": ("/*! Bootstrap v{version} (https://getbootstrap.com) */", None),
    "modernizr": ("/*! Modernizr v{version} | MIT License */", None),
    "underscore": ("//     Underscore.js {version}", None),
    "isotope": ("/*! Isotope PACKAGED v{version} | isotope.metafizzy.co */", None),
    "moment": ("//! moment.js version {version}", "//! moment.js"),
}

#: Deterministic ingredient pool order (sampling indexes into this).
VENDORABLE_LIBRARIES: Tuple[str, ...] = tuple(sorted(BUNDLE_BANNERS))


@dataclasses.dataclass(frozen=True)
class VendoredInclusion:
    """One library vendored inside a site's application bundle.

    Ground truth for generation; ``detected`` already accounts for
    banner stripping (an ingredient whose version is hidden but whose
    banner format cannot appear versionless is undetectable outright).

    Invariant: ``detected and not version_visible`` implies the library
    has a versionless banner form in :data:`BUNDLE_BANNERS`.
    """

    library: str
    version: str
    detected: bool
    version_visible: bool


def pin_date(study_start: datetime.date, bundling: BundlingConfig) -> datetime.date:
    """The date the bundle was last built (ingredients pin here)."""
    return study_start - datetime.timedelta(weeks=bundling.pin_lag_weeks)


def sample_vendored(
    rng: np.random.Generator,
    bundling: BundlingConfig,
    catalogs: Dict[str, ReleaseCatalog],
    study_start: datetime.date,
) -> Tuple[VendoredInclusion, ...]:
    """Draw one site's vendored ingredient set (may be empty).

    The caller owns the RNG stream; every call consumes an identical
    draw shape given the same config, so sites are independent.
    """
    if rng.random() >= bundling.share:
        return ()
    count = 1 + int(rng.integers(0, bundling.max_ingredients))
    count = min(count, len(VENDORABLE_LIBRARIES))
    picks = rng.choice(len(VENDORABLE_LIBRARIES), size=count, replace=False)
    built = pin_date(study_start, bundling)
    ingredients = []
    for index in sorted(int(i) for i in picks):
        library = VENDORABLE_LIBRARIES[index]
        catalog = catalogs[library]
        release = catalog.latest_as_of(built) or catalog.first
        detected = bool(rng.random() < bundling.detection_rate)
        version_visible = bool(rng.random() < bundling.version_visible_rate)
        if detected and not version_visible and BUNDLE_BANNERS[library][1] is None:
            # The banner only exists in a versioned form; hiding the
            # version means the minifier stripped it entirely.
            detected = False
        ingredients.append(
            VendoredInclusion(
                library=library,
                version=release.version.text,
                detected=detected,
                version_visible=version_visible,
            )
        )
    return tuple(ingredients)


def bundle_chunk(vendored: VendoredInclusion, rank: int) -> str:
    """The inline ``<script>`` body for one bundle chunk.

    Detected ingredients lead with their banner comment; undetected ones
    render as an opaque minified chunk that matches no signature.
    """
    stub = f'!function(){{"use strict";var n={rank};}}();'
    if not vendored.detected:
        return stub
    versioned, versionless = BUNDLE_BANNERS[vendored.library]
    if vendored.version_visible:
        banner = versioned.format(version=vendored.version)
    else:
        assert versionless is not None
        banner = versionless
    return f"{banner}\n{stub}"
