"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems raise the
most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A scenario or component configuration is invalid."""


class VersionError(ReproError):
    """A version string or version range could not be parsed or compared."""


class CatalogError(ReproError):
    """A library release catalog is missing or inconsistent."""


class NetworkError(ReproError):
    """Base class for virtual-network failures."""


class DNSError(NetworkError):
    """A hostname could not be resolved on the virtual network."""


class ConnectionFailed(NetworkError):
    """The virtual TCP connection could not be established."""


class RequestTimeout(NetworkError):
    """The virtual request did not complete within its deadline."""


class TooManyRedirects(NetworkError):
    """A fetch followed more redirects than allowed."""


class CrawlError(ReproError):
    """The crawler could not complete a scheduled operation."""


class ShardExecutionError(CrawlError):
    """A shard worker failed; carries the shard's identity for diagnosis.

    Attributes:
        shard_index: Position of the shard in the dispatch plan.
        description: Human-readable shard identity (week span, domain
            span, backend name).
        attempts: How many times the shard was attempted before failing.
        cause: ``"TypeName: message"`` of the worker-side exception.
    """

    def __init__(
        self,
        shard_index: int,
        description: str,
        attempts: int,
        cause: str,
    ) -> None:
        self.shard_index = shard_index
        self.description = description
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"{description} failed after "
            f"{attempts} attempt{'s' if attempts != 1 else ''}: {cause}"
        )


class InjectedFault(CrawlError):
    """Base class for faults injected by a :class:`~repro.runtime.FaultPlan`."""


class InjectedWorkerCrash(InjectedFault):
    """A planned worker crash fired at a shard boundary."""


class InjectedShardTimeout(InjectedFault):
    """A planned shard timeout fired at a shard boundary."""


class CheckpointError(CrawlError):
    """A checkpoint directory could not be used for a durable run."""


class CheckpointMismatchError(CheckpointError):
    """A resumed run's manifest does not match the live configuration.

    Resuming replays journaled shard payloads verbatim, so the run being
    resumed must be the *same* run: same scenario config, mode, fault
    plan, target weeks, and retained domains.  Any divergence is refused
    rather than papered over — a silent mismatch would merge payloads
    from two different datasets.

    Attributes:
        path: The checkpoint directory's manifest path.
        mismatches: ``(field, recorded, live)`` triples, one per
            diverging manifest field.
    """

    def __init__(self, path: str, mismatches) -> None:
        self.path = str(path)
        self.mismatches = tuple(mismatches)
        detail = "; ".join(
            f"{field}: run recorded {recorded!r}, live run has {live!r}"
            for field, recorded, live in self.mismatches
        )
        super().__init__(
            f"checkpoint manifest {self.path} does not match this run "
            f"({detail}); resume with the original configuration or "
            f"start a fresh checkpoint directory"
        )


class OrchestratorError(ReproError):
    """Base class for multi-run orchestrator failures."""


class QueueError(OrchestratorError):
    """A job-queue directory could not be opened, read, or written."""


class JobExecutionError(OrchestratorError):
    """A fleet job failed while executing.

    Attributes:
        job_id: The failing job.
        cause: ``"TypeName: message"`` of the underlying error.
    """

    def __init__(self, job_id: str, cause: str) -> None:
        self.job_id = job_id
        self.cause = cause
        super().__init__(f"job {job_id} failed: {cause}")


class InjectedJobCrash(InjectedFault):
    """A planned orchestrator-level job-runner crash fired."""


class StoreError(ReproError):
    """The snapshot store rejected an operation.

    Attributes:
        path: File the error concerns, when the operation touched disk.
        field: Offending document field, when one could be identified.
    """

    def __init__(self, message: str, path=None, field=None) -> None:
        self.message = message
        self.path = str(path) if path is not None else None
        self.field = field
        suffix = ""
        if field is not None:
            suffix += f" (field {field!r})"
        if path is not None:
            suffix += f" [{self.path}]"
        super().__init__(message + suffix)


class FingerprintError(ReproError):
    """The fingerprint engine was given input it cannot process."""


class SignatureError(FingerprintError):
    """A technology signature definition is malformed."""


class VulnDBError(ReproError):
    """The vulnerability database rejected a record or query."""


class PocError(ReproError):
    """A proof-of-concept program could not be executed."""


class EnvironmentSetupError(PocError):
    """A simulated library environment could not be constructed."""


class AnalysisError(ReproError):
    """An analysis was run on inputs that violate its preconditions."""


class ServeError(ReproError):
    """The query service could not start up or satisfy a request."""
