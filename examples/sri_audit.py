"""Section 6.5 + Section 9 reproduction: external-library hygiene.

Audits a crawled scenario for:

* Subresource Integrity adoption (Figure 10: 99.7% of sites have at
  least one unprotected external library),
* crossorigin configuration,
* GitHub-hosted libraries (Table 6),
* the served-file hash audit against official distributions (Section 9).

Usage::

    python examples/sri_audit.py [population]
"""

import sys

from repro import ScenarioConfig, Study
from repro.reporting import Table


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000
    study = Study(ScenarioConfig(population=population))
    study.run()

    sri = study.sri()
    print(
        f"sites with >=1 external library missing integrity: "
        f"{sri.average_missing_share:.1%} (paper: 99.7%)"
    )
    print("crossorigin values among SRI-protected inclusions:")
    for value, share in sri.crossorigin_shares.items():
        print(f"  {value or '(empty)':16s} {share:.1%}")
    print()

    untrusted = study.untrusted()
    print(
        f"sites loading libraries from VCS hosting (weekly avg): "
        f"{untrusted.average_sites:,.1f}; with SRI: "
        f"{untrusted.integrity_share:.1%} (paper: 0.6%)"
    )
    table = Table(["GitHub host", "sites"], title="Table 6 — VCS-hosted libraries")
    for row in untrusted.rows[:10]:
        table.add_row(row.host, row.site_count)
    print(table.render())
    print()

    audit = study.hash_audit(max_domains=150)
    print(
        f"hash audit: {audit.files_checked} self-hosted library files "
        f"checked, {audit.mismatch_count} hash mismatches, all benign "
        f"whitespace/comment edits: {audit.all_mismatches_benign} "
        f"(the paper found no hand-patched libraries either)"
    )


if __name__ == "__main__":
    main()
