"""Section 7 reproduction: how (slowly) vulnerable jQuery gets updated.

Crawls a scenario, then prints:

* the Figure 7(a) version-swap series (jQuery 1.12.4 vs 3.5.x/3.6.0),
* the WordPress attribution of the December 2020 wave (Figure 7(b)),
* the per-advisory window-of-vulnerability table (531.2-day headline),
* the understated-CVE delay penalty (701.2 vs 510 days in the paper).

Usage::

    python examples/update_behavior.py [population]
"""

import sys

from repro import ScenarioConfig, Study
from repro.analysis.updates import december_2020_wave
from repro.reporting import StudyReport, render_series


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    study = Study(ScenarioConfig(population=population))
    study.run()

    trends = study.version_trends("jquery", ["1.12.4", "3.5.1", "3.6.0"])
    print("Figure 7(a) — jQuery version swap")
    for version, series in trends.series.items():
        print(render_series(trends.dates, series, f"jquery {version}"))
    print()

    wave = december_2020_wave(study.store)
    print(
        f"December 2020 wave: 1.12.4 dropped {wave['old_drop']:.0%} while "
        f"3.5.1 rose {wave['new_rise']:.0%} (relative to the Nov 2020 "
        f"1.12.4 population)"
    )

    wp = study.wordpress_jquery_trends(["3.5.1"])
    total = study.version_trends("jquery", ["3.5.1"])
    attribution = sum(wp.series["3.5.1"]) / max(sum(total.series["3.5.1"]), 1)
    print(f"WordPress share of all jQuery 3.5.1 observations: {attribution:.0%}")
    print()

    print(StudyReport(study).section7())
    print()

    penalty = study.understatement_penalty()
    print(
        "understated CVEs measured against their stated ranges: "
        f"{penalty.stated_mean_days:,.0f} days mean exposure; against the "
        f"true vulnerable versions: {penalty.true_mean_days:,.0f} days "
        f"(+{penalty.extra_days:,.0f}; paper: 510 -> 701.2)"
    )


if __name__ == "__main__":
    main()
