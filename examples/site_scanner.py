"""Scan websites of a scenario with the advisor (Section 9 as a tool).

Builds a small ecosystem, picks a handful of sites at the final
snapshot, and prints prioritized findings for each — vulnerable library
versions (with [UNDISCLOSED] marking issues the stated CVE ranges miss),
discontinued projects, missing SRI, Flash past end of life, and outdated
WordPress cores.

Usage::

    python examples/site_scanner.py [population] [sites-to-scan]
"""

import datetime
import sys

from repro import ScenarioConfig
from repro.advisor import SiteScanner
from repro.webgen import WebEcosystem
from repro.webgen.domains import Reachability


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    to_scan = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    ecosystem = WebEcosystem(ScenarioConfig(population=population))
    last_week = ecosystem.calendar.last.ordinal
    ecosystem.set_week(last_week)
    scanner = SiteScanner(as_of=ecosystem.calendar.last.date)

    scanned = 0
    for domain in ecosystem.population:
        if scanned >= to_scan:
            break
        if domain.reachability in (Reachability.DEAD, Reachability.ANTIBOT):
            continue
        if not domain.alive_at(last_week):
            continue
        html = ecosystem.landing_page(domain, last_week)
        report = scanner.scan_html(html, f"https://{domain.name}/")
        if not report.findings:
            continue
        scanned += 1
        print(report.summary_line())
        for finding in report.findings[:6]:
            flags = " [EXPLOITABLE]" if finding.exploitable else ""
            flags += " [UNDISCLOSED]" if finding.undisclosed else ""
            print(f"  {finding.severity.name:8s} {finding.title}{flags}")
            print(f"  {'':8s} -> {finding.remediation}")
        if len(report.findings) > 6:
            print(f"  ... and {len(report.findings) - 6} more findings")
        print()


if __name__ == "__main__":
    main()
