"""Section 9's suggestion, quantified: universal auto-updating.

Runs paired scenarios (same seed, one mechanism changed) and prints how
much each intervention moves the vulnerable-site share and the update
delays — the evidence behind the paper's recommendation that "a new
auto-updating feature for the client-side resources" would secure the
Web ecosystem.

Usage::

    python examples/what_if_auto_updates.py [population]
"""

import sys

from repro import ScenarioConfig
from repro.analysis.counterfactuals import (
    BUILTIN_INTERVENTIONS,
    _run,
    evaluate,
)


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000
    config = ScenarioConfig(population=population)

    print(f"baseline: {population:,} domains, paper-calibrated behaviour mix")
    baseline = _run(config)
    print(
        f"  vulnerable share {baseline.vulnerable_share:.1%}, "
        f"mean delay {baseline.mean_update_delay_days:,.0f} days, "
        f"{baseline.updated_sites:,} updates / {baseline.censored_sites:,} never"
    )
    print()
    for name in BUILTIN_INTERVENTIONS:
        result = evaluate(name, config, baseline=baseline)
        print(result.summary())


if __name__ == "__main__":
    main()
