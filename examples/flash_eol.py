"""Section 8 reproduction: Adobe Flash after its end of life.

Prints the Figure 8 decay series, the Figure 11 AllowScriptAccess
trends, the Table 3 browser matrix, and the top-10K survivor case study.

Usage::

    python examples/flash_eol.py [population]
"""

import sys

from repro import ScenarioConfig, Study
from repro.analysis.flash import BROWSER_FLASH_SUPPORT
from repro.reporting import Table, render_series


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    study = Study(ScenarioConfig(population=population))
    study.run()
    scale = study.config.scale_factor

    usage = study.flash_usage()
    print("Figure 8 — Flash usage (all ranks)")
    print(render_series(usage.dates, usage.total, "flash sites"))
    print(
        f"start: {usage.start_count * scale:,.0f} (paper 9,880)   "
        f"end: {usage.end_count * scale:,.0f} (paper 3,195)   "
        f"avg after EOL: {usage.average_after_eol * scale:,.0f} (paper 3,553)"
    )
    print()

    access = study.flash_script_access()
    print("Figure 11 — AllowScriptAccess")
    print(render_series(access.dates, access.specified, "parameter specified"))
    print(render_series(access.dates, access.always, "insecure 'always'"))
    print(f"average insecure share: {access.average_always_share:.1%} (paper 24.7%)")
    print()

    table = Table(["browser", "market share", "plays Flash"], title="Table 3")
    for name, share, supported in BROWSER_FLASH_SUPPORT:
        table.add_row(name, f"{share:.2f}%", "YES" if supported else "no")
    print(table.render())
    print()

    survivors = study.flash_case_study()
    print(f"top-10K post-EOL survivors: {len(survivors)} (paper: 13 at 782K scale)")
    for row in survivors:
        visibility = "visible" if row.visible else "invisible"
        print(f"  #{row.rank:<6} {row.domain:28s} {visibility:9s} {row.country}")


if __name__ == "__main__":
    main()
