"""Section 6.4 reproduction: validate CVE ranges with the PoC lab.

Sweeps every advisory's proof-of-concept across all catalogued releases
(the paper built 85 jQuery environments this way), then prints the Table
2 verdicts: which CVE reports understate or overstate their affected
versions.

Usage::

    python examples/cve_accuracy_audit.py
"""

from repro.poclab import ValidationLab
from repro.reporting import Table
from repro.vulndb import RangeAccuracy, default_database


def main() -> None:
    lab = ValidationLab(default_database())
    table = Table(
        ["advisory", "library", "stated range", "sweep verdict",
         "newly revealed", "exonerated"],
        title="PoC validation sweep (Section 6.4 / Table 2)",
    )
    counts = {verdict: 0 for verdict in RangeAccuracy}
    for verdict in lab.classify_all():
        advisory = verdict.advisory
        counts[verdict.verdict] += 1
        def span(versions):
            if not versions:
                return "-"
            if len(versions) <= 2:
                return ", ".join(versions)
            return f"{versions[0]} .. {versions[-1]} ({len(versions)})"
        table.add_row(
            advisory.identifier,
            advisory.library,
            advisory.stated_range.describe(),
            verdict.verdict.value,
            span(verdict.newly_revealed),
            span(verdict.exonerated),
        )
    print(table.render())
    print()
    incorrect = counts[RangeAccuracy.UNDERSTATED] + counts[RangeAccuracy.OVERSTATED]
    print(
        f"verdicts: {counts[RangeAccuracy.UNDERSTATED]} understated, "
        f"{counts[RangeAccuracy.OVERSTATED]} overstated, "
        f"{counts[RangeAccuracy.CORRECT]} correct "
        f"-> {incorrect} incorrect reports (paper: 13 CVEs + the "
        f"unassigned jQuery-Migrate advisory)"
    )


if __name__ == "__main__":
    main()
