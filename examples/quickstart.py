"""Quickstart: run a small four-year study and print the headlines.

Usage::

    python examples/quickstart.py [population] [seed]

Builds the synthetic ecosystem, crawls all 201 weekly snapshots in
manifest mode, and prints the paper's headline numbers next to ours.
"""

import sys
import time

from repro import ScenarioConfig, Study
from repro.reporting import StudyReport


def main() -> None:
    population = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 20230926

    print(f"building + crawling {population:,} domains x 201 weeks ...")
    started = time.time()
    study = Study(ScenarioConfig(population=population, seed=seed))
    report = study.run()
    print(
        f"done in {time.time() - started:.1f}s — "
        f"{report.pages_collected:,} pages collected, "
        f"{report.filter_report.removed:,} domains filtered as inaccessible"
    )
    print()
    for line in study.results().summary_lines():
        print(" ", line)
    print()
    print(StudyReport(study).figure2())


if __name__ == "__main__":
    main()
