"""Runtime layer: shard planning, store merging, backend equivalence.

The pipeline's determinism contract — same seed, same dataset, on every
backend and worker count — is enforced here, together with the exact
merge semantics (``merge(split(store)) == store``) and the persistence
codec's behaviour under merge.
"""

from __future__ import annotations

import pytest

from repro import ExecutionConfig, IncrementalConfig, ScenarioConfig, Study
from repro.crawler import Crawler, ObservationStore
from repro.crawler.persistence import store_from_dict, store_to_dict
from repro.errors import ConfigError, CrawlError, StoreError
from repro.runtime import (
    AsyncBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    plan_shards,
)
from repro.vulndb import MatchMode, VersionMatcher, default_database
from repro.webgen import WebEcosystem


def _square(x):
    return x * x


class TestPlanner:
    @pytest.mark.parametrize(
        "n_weeks,n_domains,workers,shard_size",
        [
            (201, 500, 1, 0),
            (201, 500, 4, 0),
            (10, 3, 8, 0),
            (1, 100, 8, 0),
            (7, 7, 3, 5),
            (50, 200, 2, 999),
        ],
    )
    def test_covers_every_cell_exactly_once(
        self, n_weeks, n_domains, workers, shard_size
    ):
        shards = plan_shards(n_weeks, n_domains, workers, shard_size)
        seen = set()
        for shard in shards:
            for w in range(shard.week_start, shard.week_start + shard.week_count):
                for d in range(
                    shard.domain_start, shard.domain_start + shard.domain_count
                ):
                    assert (w, d) not in seen
                    seen.add((w, d))
        assert len(seen) == n_weeks * n_domains

    def test_week_runs_are_contiguous_and_balanced(self):
        shards = plan_shards(100, 2, workers=6)
        assert len(shards) >= 6
        # Trajectory-merge invariant: weeks form contiguous runs.
        for shard in shards:
            assert shard.week_count > 0 and shard.domain_count > 0
        cells = [s.cells for s in shards]
        assert max(cells) - min(cells) <= max(1, max(cells) // 2)

    def test_shard_size_bounds_cells(self):
        shards = plan_shards(40, 30, workers=1, shard_size=100)
        assert all(s.cells <= 100 for s in shards)
        assert len(shards) >= (40 * 30) // 100

    def test_empty_grid(self):
        assert plan_shards(0, 100, 4) == []
        assert plan_shards(100, 0, 4) == []

    def test_invalid_args_rejected(self):
        with pytest.raises(CrawlError):
            plan_shards(10, 10, workers=0)
        with pytest.raises(CrawlError):
            plan_shards(10, 10, workers=1, shard_size=-1)


class TestExecutionConfig:
    def test_defaults_are_serial(self):
        cfg = ExecutionConfig()
        assert cfg.resolved_backend == "serial"

    def test_auto_promotes_with_workers(self):
        assert ExecutionConfig(workers=4).resolved_backend == "process"
        assert ExecutionConfig(backend="thread", workers=4).resolved_backend == "thread"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(backend="gpu")
        with pytest.raises(ConfigError):
            ExecutionConfig(workers=0)
        with pytest.raises(ConfigError):
            ExecutionConfig(shard_size=-5)

    def test_get_backend(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("thread", 2), ThreadBackend)
        assert isinstance(get_backend("process", 2), ProcessBackend)
        assert isinstance(get_backend("async", 2), AsyncBackend)
        assert isinstance(get_backend("auto", 1), SerialBackend)
        assert isinstance(get_backend("auto", 2), ProcessBackend)
        # Validation is normalized in get_backend: unknown names and bad
        # worker counts both raise the typed ConfigError, for every
        # backend, before any constructor runs.
        with pytest.raises(ConfigError, match="unknown execution backend"):
            get_backend("quantum")
        for name in ("serial", "thread", "process", "async", "auto"):
            with pytest.raises(ConfigError, match="workers must be >= 1"):
                get_backend(name, workers=0)

    def test_backends_map_in_task_order(self):
        tasks = list(range(7))
        expected = [x * x for x in tasks]
        assert SerialBackend().map(_square, tasks) == expected
        assert ThreadBackend(workers=3).map(_square, tasks) == expected
        assert ProcessBackend(workers=2).map(_square, tasks) == expected
        assert AsyncBackend(workers=3).map(_square, tasks) == expected


def _fresh_store(config):
    return ObservationStore(config.calendar, VersionMatcher(default_database()))


def _crawl_serial(config, weeks, mode="manifest"):
    ecosystem = WebEcosystem(config)
    store = _fresh_store(config)
    crawler = Crawler(ecosystem, store=store, mode=mode, apply_filter=False)
    crawler.crawl_block(weeks, list(ecosystem.population))
    return store


def _crawl_split(config, weeks, splits, mode="manifest"):
    """Crawl the same space as shards (per ``splits``) and merge."""
    merged = _fresh_store(config)
    for week_lo, week_hi, domain_lo, domain_hi in splits:
        ecosystem = WebEcosystem(config)
        store = _fresh_store(config)
        crawler = Crawler(ecosystem, store=store, mode=mode, apply_filter=False)
        domains = list(ecosystem.population)[domain_lo:domain_hi]
        crawler.crawl_block(weeks[week_lo:week_hi], domains)
        merged.merge(store)
    return merged


class TestStoreMerge:
    """merge(split(store)) round-trips exactly, on both split axes."""

    @pytest.fixture(scope="class")
    def split_config(self):
        return ScenarioConfig(population=100, seed=55)

    @pytest.fixture(scope="class")
    def split_weeks(self, split_config):
        return split_config.calendar.weeks[:24]

    @pytest.fixture(scope="class")
    def serial_store(self, split_config, split_weeks):
        return _crawl_serial(split_config, split_weeks)

    @pytest.mark.parametrize(
        "splits",
        [
            # domain-axis split (3 uneven chunks)
            [(0, 24, 0, 30), (0, 24, 30, 75), (0, 24, 75, 100)],
            # week-axis split (contiguous runs)
            [(0, 7, 0, 100), (7, 8, 0, 100), (8, 24, 0, 100)],
            # grid split
            [
                (0, 11, 0, 40),
                (0, 11, 40, 100),
                (11, 24, 0, 40),
                (11, 24, 40, 100),
            ],
        ],
        ids=["domains", "weeks", "grid"],
    )
    def test_merge_split_roundtrip(
        self, split_config, split_weeks, serial_store, splits
    ):
        merged = _crawl_split(split_config, split_weeks, splits)
        assert merged.total_observations == serial_store.total_observations
        assert merged.observed_domains == serial_store.observed_domains
        assert merged.trajectories == serial_store.trajectories
        assert merged.wp_trajectories == serial_store.wp_trajectories
        assert merged.flash_spans == serial_store.flash_spans
        assert dict(merged.untrusted_site_sets) == dict(
            serial_store.untrusted_site_sets
        )
        for ordinal, agg in serial_store.weeks.items():
            other = merged.weeks[ordinal]
            assert other.collected == agg.collected
            assert dict(other.version_counts) == dict(agg.version_counts)
            assert dict(other.library_users) == dict(agg.library_users)
            assert {k: dict(v) for k, v in other.cdn_hosts.items()} == {
                k: dict(v) for k, v in agg.cdn_hosts.items()
            }
            assert other.wordpress_sites == agg.wordpress_sites
            assert other.flash_sites == agg.flash_sites
            # Both vulnerability join caches merge exactly.
            for mode in (MatchMode.CVE, MatchMode.TVV):
                assert other.vulnerable_sites[mode] == agg.vulnerable_sites[mode]
                assert dict(other.vuln_count_hist[mode]) == dict(
                    agg.vuln_count_hist[mode]
                )
                assert dict(other.advisory_sites[mode]) == dict(
                    agg.advisory_sites[mode]
                )
        # Full canonical equality via the persistence codec.
        assert store_to_dict(merged) == store_to_dict(serial_store)

    def test_merge_is_associative(self, split_config, split_weeks, serial_store):
        splits = [(0, 24, 0, 30), (0, 24, 30, 75), (0, 24, 75, 100)]
        partials = []
        for week_lo, week_hi, domain_lo, domain_hi in splits:
            ecosystem = WebEcosystem(split_config)
            store = _fresh_store(split_config)
            Crawler(
                ecosystem, store=store, mode="manifest", apply_filter=False
            ).crawl_block(
                split_weeks[week_lo:week_hi],
                list(ecosystem.population)[domain_lo:domain_hi],
            )
            partials.append(store_to_dict(store))

        def fold(order):
            acc = _fresh_store(split_config)
            for i in order:
                acc.merge(
                    store_from_dict(partials[i], split_config.calendar)
                )
            return store_to_dict(acc)

        assert fold([0, 1, 2]) == fold([2, 0, 1]) == store_to_dict(serial_store)

    def test_merge_calendar_mismatch_rejected(self, split_config):
        from repro.timeline import StudyCalendar

        a = _fresh_store(split_config)
        other_cal = StudyCalendar(scheduled_weeks=10, pruned=())
        b = ObservationStore(other_cal, VersionMatcher(default_database()))
        with pytest.raises(StoreError):
            a.merge(b)

    def test_week_aggregate_merge_wrong_week_rejected(self, split_config):
        store = _fresh_store(split_config)
        with pytest.raises(StoreError):
            store.weeks[0].merge(store.weeks[1])


class TestBackendEquivalence:
    """Identical seed + config => identical results on every backend."""

    CONFIG = ScenarioConfig(population=150, seed=90)
    WEEKS = CONFIG.calendar.weeks[:10]

    @pytest.fixture(scope="class")
    def serial_study(self):
        study = Study(self.CONFIG)
        study.run(weeks=self.WEEKS)
        return study

    @pytest.mark.parametrize(
        "backend,workers,shard_size",
        [
            ("serial", 3, 0),
            ("thread", 3, 0),
            ("process", 2, 0),
            ("thread", 2, 200),  # force week-axis sharding too
        ],
    )
    def test_sharded_matches_serial(self, serial_study, backend, workers, shard_size):
        from repro.options import ExecutionOptions, RunOptions

        study = Study(
            self.CONFIG,
            options=RunOptions(
                execution=ExecutionOptions(
                    workers=workers, backend=backend, shard_size=shard_size
                )
            ),
        )
        report = study.run(weeks=self.WEEKS)
        assert report.pages_collected == serial_study.crawl_report.pages_collected
        assert report.fetch_failures == serial_study.crawl_report.fetch_failures
        assert report.domains_crawled == serial_study.crawl_report.domains_crawled
        assert store_to_dict(study.store) == store_to_dict(serial_study.store)
        assert study.results() == serial_study.results()

    def test_full_mode_sharded_matches_serial(self):
        config = ScenarioConfig(population=80, seed=13)
        weeks = config.calendar.weeks[:6]
        serial = Study(config, mode="full")
        serial.run(weeks=weeks)
        from repro.options import ExecutionOptions, RunOptions

        sharded = Study(
            config,
            mode="full",
            options=RunOptions(
                execution=ExecutionOptions(workers=3, backend="thread")
            ),
        )
        sharded.run(weeks=weeks)
        assert store_to_dict(sharded.store) == store_to_dict(serial.store)


class TestIncrementalEquivalence:
    """The profile cache never changes the dataset, on any backend.

    A full crawl with the cache enabled must persist byte-identically to
    a cache-disabled crawl, across serial/thread/process backends and
    odd shard sizes (shard boundaries reset the per-shard cache, so
    uneven shards exercise different hit patterns over the same data).
    """

    CONFIG = ScenarioConfig(population=80, seed=13)
    WEEKS = CONFIG.calendar.weeks[:6]

    @pytest.fixture(scope="class")
    def uncached_full(self):
        from repro.options import RunOptions

        study = Study(
            self.CONFIG,
            mode="full",
            options=RunOptions.from_kwargs(profile_cache=False),
        )
        study.run(weeks=self.WEEKS)
        return study

    @pytest.mark.parametrize(
        "backend,workers,shard_size",
        [
            ("serial", 1, 0),
            ("serial", 1, 37),  # odd shard size, serial dispatch path
            ("thread", 3, 0),
            ("process", 2, 0),
            ("thread", 2, 113),  # odd shard size, forces week splits
        ],
    )
    def test_cached_full_crawl_matches_uncached(
        self, uncached_full, backend, workers, shard_size
    ):
        from repro.options import ExecutionOptions, RunOptions

        study = Study(
            self.CONFIG,
            mode="full",
            options=RunOptions(
                execution=ExecutionOptions(
                    workers=workers,
                    backend=backend,
                    shard_size=shard_size,
                    profile_cache=True,
                )
            ),
        )
        report = study.run(weeks=self.WEEKS)
        baseline = uncached_full.crawl_report
        assert report.pages_collected == baseline.pages_collected
        assert report.fetch_failures == baseline.fetch_failures
        assert report.cache_hits > 0
        # Byte-identical persisted stores: cache on == cache off.
        assert store_to_dict(study.store) == store_to_dict(uncached_full.store)

    def test_cache_disabled_reports_zero_counters(self, uncached_full):
        report = uncached_full.crawl_report
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert report.cache_hit_rate == 0.0

    def test_incremental_override_reaches_workers(self):
        """Crawler-level incremental override must travel into shards."""
        from repro.crawler import Crawler

        config = ScenarioConfig(population=60, seed=5)
        weeks = config.calendar.weeks[:4]
        ecosystem = WebEcosystem(config)
        crawler = Crawler(
            ecosystem,
            mode="manifest",
            apply_filter=False,
            execution=ExecutionConfig(backend="thread", workers=2),
            incremental=IncrementalConfig(profile_cache=False),
        )
        report = crawler.run(weeks=weeks)
        assert report.cache_hits == 0 and report.cache_misses == 0

    def test_manifest_mode_cached_matches_uncached(self):
        config = ScenarioConfig(population=100, seed=55)
        weeks = config.calendar.weeks[:8]
        from repro.options import RunOptions

        off = Study(config, options=RunOptions.from_kwargs(profile_cache=False))
        off.run(weeks=weeks)
        on = Study(config, options=RunOptions.from_kwargs(profile_cache=True))
        report = on.run(weeks=weeks)
        assert report.cache_hits > 0
        # Manifest mode looks up once per collected page.
        assert (
            report.cache_hits + report.cache_misses == report.pages_collected
        )
        assert store_to_dict(on.store) == store_to_dict(off.store)


class TestPersistenceUnderMerge:
    def test_merged_store_dict_roundtrip(self):
        config = ScenarioConfig(population=90, seed=21)
        weeks = config.calendar.weeks[:12]
        serial = _crawl_serial(config, weeks)
        merged = _crawl_split(
            config, weeks, [(0, 12, 0, 45), (0, 12, 45, 90)]
        )
        payload = store_to_dict(merged)
        assert payload == store_to_dict(serial)
        reloaded = store_from_dict(payload, config.calendar)
        assert store_to_dict(reloaded) == payload
        assert reloaded.trajectories == serial.trajectories

    def test_format_version_mismatch_rejected(self):
        config = ScenarioConfig(population=60, seed=3)
        with pytest.raises(StoreError):
            store_from_dict({"format": 999}, config.calendar)
        with pytest.raises(StoreError):
            store_from_dict({}, config.calendar)
