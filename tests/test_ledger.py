"""Durable checkpointed crawls: run ledger, crash recovery, integrity.

The contract under test (extending the PR-1/PR-3 determinism
guarantees): a run killed at any point — including by a hard process
abort that skips every cleanup path — and resumed from its checkpoint
directory produces a persisted store *byte-identical* to the same run
executed uninterrupted, on every backend; and corrupt journal entries
are quarantined and re-executed, never silently trusted.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

import repro
from repro import FaultPlan, ScenarioConfig
from repro.config import ExecutionConfig
from repro.crawler import Crawler
from repro.crawler.persistence import save_store, store_to_dict
from repro.errors import (
    CheckpointError,
    CheckpointMismatchError,
    ConfigError,
    CrawlError,
)
from repro.runtime.ledger import (
    LEDGER_FORMAT,
    RunLedger,
    RunManifest,
    scenario_digest,
)
from repro.webgen import WebEcosystem

_CONFIG = ScenarioConfig(population=40, seed=11)
_WEEKS = _CONFIG.calendar.weeks[:4]
_SHARD_SIZE = 30  # 40 domains x 4 weeks = 160 cells -> 6 shards


def _run(
    checkpoint=None,
    resume=False,
    backend="thread",
    workers=2,
    plan=None,
    config=_CONFIG,
    weeks=_WEEKS,
):
    crawler = Crawler(
        WebEcosystem(config),
        mode="manifest",
        apply_filter=False,
        execution=ExecutionConfig(
            backend=backend, workers=workers, shard_size=_SHARD_SIZE
        ),
        fault_plan=plan,
        checkpoint_dir=str(checkpoint) if checkpoint else None,
        resume=resume,
    )
    report = crawler.run(weeks=weeks)
    return report, store_to_dict(crawler.store)


def _journal_entries(root: Path):
    return sorted((Path(root) / "journal").glob("shard-*.wal"))


def _read_entry(entry_file: Path):
    """Split one journal entry into (header dict, compressed body)."""
    head, _, body = entry_file.read_bytes().partition(b"\n")
    return json.loads(head.decode("utf-8")), body


def _write_entry(entry_file: Path, header: dict, body: bytes) -> None:
    entry_file.write_bytes(
        json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + body
    )


def _split_body(body: bytes):
    """Unframe a format-3 body into (store blob, metadata dict)."""
    (store_len,) = struct.unpack_from("<I", body)
    store_blob = body[4 : 4 + store_len]
    meta = json.loads(zlib.decompress(body[4 + store_len :]).decode("utf-8"))
    return store_blob, meta


def _build_body(store_blob: bytes, meta: dict) -> bytes:
    """Frame a format-3 body from its parts (mirrors RunLedger.journal)."""
    return (
        struct.pack("<I", len(store_blob))
        + store_blob
        + zlib.compress(json.dumps(meta, sort_keys=True).encode("utf-8"), 1)
    )


class TestFreshCheckpointedRun:
    def test_journal_and_manifest_written(self, tmp_path):
        _, baseline = _run()
        report, store = _run(checkpoint=tmp_path / "run")
        assert store == baseline  # ledger never changes a byte
        assert (tmp_path / "run" / "manifest.json").exists()
        entries = _journal_entries(tmp_path / "run")
        assert len(entries) == report.shards_reexecuted > 1
        assert report.shards_replayed == 0
        assert report.entries_quarantined == 0
        assert report.bytes_journaled == sum(
            entry.stat().st_size for entry in entries
        )

    def test_entry_checksums_verify(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        import hashlib

        for entry_file in _journal_entries(tmp_path / "run"):
            header, body = _read_entry(entry_file)
            assert header["format"] == LEDGER_FORMAT
            # The checksum covers the body bytes exactly as they sit
            # on disk.
            assert hashlib.sha256(body).hexdigest() == header["sha256"]
            store_blob, meta = _split_body(body)
            assert meta["ok"]
            # The framed store is a canonical binary blob, verbatim.
            assert store_blob[:4] == b"RPS2"

    def test_existing_run_dir_requires_resume(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        with pytest.raises(CheckpointError, match="resume"):
            _run(checkpoint=tmp_path / "run")

    def test_single_shard_serial_run_still_journals(self, tmp_path):
        config = ScenarioConfig(population=10, seed=3)
        weeks = config.calendar.weeks[:2]
        crawler = Crawler(
            WebEcosystem(config),
            mode="manifest",
            apply_filter=False,
            execution=ExecutionConfig(backend="serial", workers=1),
            checkpoint_dir=str(tmp_path / "run"),
        )
        report = crawler.run(weeks=weeks)
        assert report.shards_reexecuted == 1
        assert len(_journal_entries(tmp_path / "run")) == 1


class TestResume:
    def test_full_resume_replays_everything(self, tmp_path):
        report1, baseline = _run(checkpoint=tmp_path / "run")
        report2, store = _run(checkpoint=tmp_path / "run", resume=True)
        assert store == baseline
        assert report2.shards_replayed == report1.shards_reexecuted
        assert report2.shards_reexecuted == 0
        # Replayed counters reproduce the original run's totals.
        assert report2.pages_collected == report1.pages_collected
        assert report2.fetch_failures == report1.fetch_failures

    def test_partial_resume_executes_only_missing_shards(self, tmp_path):
        _, baseline = _run(checkpoint=tmp_path / "run")
        entries = _journal_entries(tmp_path / "run")
        removed = entries[::2]
        for entry in removed:
            entry.unlink()
        report, store = _run(checkpoint=tmp_path / "run", resume=True)
        assert store == baseline
        assert report.shards_reexecuted == len(removed)
        assert report.shards_replayed == len(entries) - len(removed)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_resume_is_backend_independent(self, tmp_path, backend, monkeypatch):
        _, baseline = _run(checkpoint=tmp_path / "ref")
        work = tmp_path / f"work-{backend}"
        shutil.copytree(tmp_path / "ref", work)
        for entry in _journal_entries(work)[:3]:
            entry.unlink()
        workers = 2 if backend != "serial" else 1
        report, store = _run(
            checkpoint=work, resume=True, backend=backend, workers=workers
        )
        assert store == baseline
        assert report.shards_reexecuted == 3

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        _, baseline = _run(checkpoint=tmp_path / "run", resume=True)
        report, store = _run(checkpoint=tmp_path / "run", resume=True)
        assert store == baseline
        assert report.shards_reexecuted == 0

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises((CrawlError, ConfigError)):
            Crawler(
                WebEcosystem(ScenarioConfig(population=10, seed=3)),
                mode="manifest",
                resume=True,
            )

    def test_execution_config_resume_requires_dir(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(resume=True)


class TestCorruptionPaths:
    """Damaged journals are quarantined and re-executed, never trusted."""

    def _damage_and_resume(self, tmp_path, damage):
        _, baseline = _run(checkpoint=tmp_path / "run")
        entries = _journal_entries(tmp_path / "run")
        damage(entries[1])
        report, store = _run(checkpoint=tmp_path / "run", resume=True)
        assert store == baseline
        assert report.entries_quarantined == 1
        assert report.shards_reexecuted == 1
        assert report.shards_replayed == len(entries) - 1
        quarantined = list((tmp_path / "run" / "quarantine").iterdir())
        assert [f.name for f in quarantined] == [entries[1].name]
        # The re-executed shard re-journaled a valid replacement.
        assert len(_journal_entries(tmp_path / "run")) == len(entries)

    def test_truncated_entry(self, tmp_path):
        def truncate(entry_file):
            raw = entry_file.read_bytes()
            entry_file.write_bytes(raw[: len(raw) // 2])

        self._damage_and_resume(tmp_path, truncate)

    def test_truncated_inside_header(self, tmp_path):
        def behead(entry_file):
            entry_file.write_bytes(entry_file.read_bytes()[:10])

        self._damage_and_resume(tmp_path, behead)

    def test_bit_flipped_payload_byte(self, tmp_path):
        def bitflip(entry_file):
            header, body = _read_entry(entry_file)
            flipped = bytes([body[0] ^ 0x01]) + body[1:]
            _write_entry(entry_file, header, flipped)

        self._damage_and_resume(tmp_path, bitflip)

    def test_bit_flipped_checksum(self, tmp_path):
        def bitflip(entry_file):
            header, body = _read_entry(entry_file)
            digest = header["sha256"]
            header["sha256"] = ("0" if digest[0] != "0" else "1") + digest[1:]
            _write_entry(entry_file, header, body)

        self._damage_and_resume(tmp_path, bitflip)

    def test_tampered_payload_fails_checksum(self, tmp_path):
        def tamper(entry_file):
            header, body = _read_entry(entry_file)
            store_blob, meta = _split_body(body)
            meta["pages"] = meta["pages"] + 1
            # Old checksum, new body bytes: must be rejected.
            _write_entry(entry_file, header, _build_body(store_blob, meta))

        self._damage_and_resume(tmp_path, tamper)

    def test_wrong_coverage_key(self, tmp_path):
        def rekey(entry_file):
            header, body = _read_entry(entry_file)
            header["shard_key"] = "weeks:0-0|domains:x..y|n=1"
            _write_entry(entry_file, header, body)

        self._damage_and_resume(tmp_path, rekey)

    def test_manifest_config_mismatch(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        other = ScenarioConfig(population=40, seed=12)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            _run(
                checkpoint=tmp_path / "run",
                resume=True,
                config=other,
                weeks=other.calendar.weeks[:4],
            )
        fields = {field for field, _, _ in excinfo.value.mismatches}
        assert "scenario_digest" in fields and "seed" in fields

    def test_manifest_fault_plan_mismatch(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        with pytest.raises(CheckpointMismatchError) as excinfo:
            _run(
                checkpoint=tmp_path / "run",
                resume=True,
                plan=FaultPlan(seed=1, crash_rate=0.5),
            )
        assert any(
            field == "fault_digest" for field, _, _ in excinfo.value.mismatches
        )

    def test_manifest_mode_mismatch(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        crawler = Crawler(
            WebEcosystem(_CONFIG),
            mode="full",
            apply_filter=False,
            execution=ExecutionConfig(
                backend="thread", workers=2, shard_size=_SHARD_SIZE
            ),
            checkpoint_dir=str(tmp_path / "run"),
            resume=True,
        )
        with pytest.raises(CheckpointMismatchError):
            crawler.run(weeks=_WEEKS)

    def test_corrupt_manifest_is_a_typed_error(self, tmp_path):
        _run(checkpoint=tmp_path / "run")
        (tmp_path / "run" / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            _run(checkpoint=tmp_path / "run", resume=True)


class TestManifest:
    def test_scenario_digest_ignores_execution_shape(self):
        base = ScenarioConfig(population=40, seed=11)
        import dataclasses

        reshaped = dataclasses.replace(
            base,
            execution=ExecutionConfig(backend="process", workers=8),
        )
        assert scenario_digest(base) == scenario_digest(reshaped)
        assert scenario_digest(base) != scenario_digest(
            ScenarioConfig(population=40, seed=12)
        )

    def test_roundtrip(self):
        from repro.runtime import plan_shards

        shards = plan_shards(4, 40, workers=2, shard_size=_SHARD_SIZE)
        manifest = RunManifest.build(
            config=_CONFIG,
            mode="manifest",
            fault_plan=None,
            week_ordinals=tuple(w.ordinal for w in _WEEKS),
            domain_names=tuple(f"d{i}.example" for i in range(40)),
            shards=shards,
            store_format=1,
        )
        restored = RunManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict()))
        )
        assert restored == manifest
        assert not restored.mismatches(manifest)
        assert [s.index for s in restored.shards()] == [s.index for s in shards]


_KILL_SCRIPT = """
import os, sys

limit = int(sys.argv[1])
root = sys.argv[2]

import repro.runtime.ledger as ledger_mod

journaled = 0
original = ledger_mod.RunLedger.journal

def aborting_journal(self, shard_index, shard_key, payload):
    global journaled
    written = original(self, shard_index, shard_key, payload)
    journaled += 1
    if journaled >= limit:
        os._exit(137)  # hard abort: no cleanup, no atexit, no flush
    return written

ledger_mod.RunLedger.journal = aborting_journal

from repro import FaultPlan, ScenarioConfig
from repro.config import ExecutionConfig
from repro.crawler import Crawler
from repro.webgen import WebEcosystem

config = ScenarioConfig(population=40, seed=11)
crawler = Crawler(
    WebEcosystem(config),
    mode="manifest",
    apply_filter=False,
    execution=ExecutionConfig(backend="thread", workers=2, shard_size=30),
    fault_plan=FaultPlan(seed=3, crash_rate=0.25),
    checkpoint_dir=root,
)
crawler.run(weeks=config.calendar.weeks[:4])
os._exit(0)  # only reached if the abort never fired
"""


class TestKillMidRun:
    """FaultPlan chaos + a hard process abort, then an exact resume."""

    @pytest.fixture(scope="class")
    def killed_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("killed")
        root = tmp / "run"
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _KILL_SCRIPT, "2", str(root)],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 137, proc.stderr
        return root

    @pytest.fixture(scope="class")
    def reference(self):
        plan = FaultPlan(seed=3, crash_rate=0.25)
        _, store = _run(plan=plan)
        return plan, store

    def test_abort_left_a_partial_journal(self, killed_run):
        entries = _journal_entries(killed_run)
        # The abort fired during the 2nd journal write (thread races can
        # land an extra completed entry, never fewer than 2 or the lot).
        assert 2 <= len(entries) < 6
        assert (killed_run / "manifest.json").exists()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_resume_after_kill_is_byte_identical(
        self, killed_run, reference, tmp_path, backend
    ):
        plan, baseline = reference
        work = tmp_path / f"resume-{backend}"
        shutil.copytree(killed_run, work)
        replayable = len(_journal_entries(work))
        report, store = _run(
            checkpoint=work, resume=True, backend=backend, plan=plan
        )
        assert store == baseline
        assert report.shards_replayed == replayable
        assert report.shards_replayed + report.shards_reexecuted == 6
        # And the *persisted* artifact matches byte for byte.
        uninterrupted = tmp_path / f"uninterrupted-{backend}.json"
        resumed = tmp_path / f"resumed-{backend}.json"
        _store_bytes(baseline, uninterrupted)
        _store_bytes(store, resumed)
        assert uninterrupted.read_bytes() == resumed.read_bytes()


def _store_bytes(store_dict, path):
    """save_store for an already-serialized store dict."""
    from repro.crawler.persistence import store_from_dict

    store = store_from_dict(store_dict, _CONFIG.calendar)
    save_store(store, path)


class TestCliCheckpointFlags:
    def test_run_resume_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "ledger"
        ref = tmp_path / "ref.json"
        resumed = tmp_path / "resumed.json"
        args = [
            "run",
            "--population",
            "60",
            "--seed",
            "5",
            "--weeks",
            "4",
            "--workers",
            "2",
            "--backend",
            "thread",
        ]
        assert main(args + ["--save-store", str(ref)]) == 0
        capsys.readouterr()
        code = main(
            args + ["--checkpoint-dir", str(root), "--save-store", str(resumed)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "ledger [" in err and "bytes journaled" in err
        assert ref.read_bytes() == resumed.read_bytes()
        # Second invocation resumes: replays every shard, executes none.
        code = main(
            args
            + [
                "--checkpoint-dir",
                str(root),
                "--resume",
                "--save-store",
                str(resumed),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "0 executed" in err
        assert ref.read_bytes() == resumed.read_bytes()

    def test_resume_requires_checkpoint_dir(self, capsys):
        from repro.cli import main

        assert main(["run", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_reusing_dir_without_resume_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "run",
            "--population",
            "40",
            "--seed",
            "5",
            "--weeks",
            "2",
            "--checkpoint-dir",
            str(tmp_path / "ledger"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "resume" in capsys.readouterr().err
