"""Vulnerability database: records, store, matcher, paper facts."""

import datetime

import pytest

from repro.errors import VulnDBError
from repro.semver import parse_range
from repro.vulndb import (
    Advisory,
    AttackType,
    MatchMode,
    RangeAccuracy,
    VersionMatcher,
    VulnerabilityDatabase,
    classify_accuracy,
    default_database,
)
from repro.vulndb.data import library_advisories


class TestAdvisoryModel:
    def test_affects_stated_vs_true(self):
        advisory = default_database().get("CVE-2020-7656")
        assert advisory.affects("1.8.3")
        assert not advisory.affects("1.10.1")  # stated says safe...
        assert advisory.affects("1.10.1", use_true_range=True)  # ...TVV says no

    def test_has_cve_id(self):
        db = default_database()
        assert db.get("CVE-2020-11022").has_cve_id
        assert not db.get("JQMIGRATE-2013-XSS").has_cve_id

    def test_unpatched(self):
        advisory = default_database().get("CVE-2020-27511")
        assert not advisory.is_patched

    def test_requires_identifier(self):
        with pytest.raises(VulnDBError):
            Advisory(identifier="", library="x", stated_range=parse_range("< 1.0"))


class TestStore:
    def test_duplicate_rejected(self):
        db = VulnerabilityDatabase()
        advisory = library_advisories()[0]
        db.add(advisory)
        with pytest.raises(VulnDBError):
            db.add(advisory)

    def test_unknown_lookup(self):
        with pytest.raises(VulnDBError):
            default_database().get("CVE-1999-0001")

    def test_for_library_sorted_by_disclosure(self):
        advisories = default_database().for_library("jquery")
        dates = [a.disclosed for a in advisories]
        assert dates == sorted(dates)

    def test_affecting_as_of_cutoff(self):
        db = default_database()
        hits_late = db.affecting("jquery", "1.12.4")
        hits_2016 = db.affecting(
            "jquery", "1.12.4", as_of=datetime.date(2016, 1, 1)
        )
        assert len(hits_2016) < len(hits_late)

    def test_disclosed_between(self):
        db = default_database()
        window = db.disclosed_between(
            datetime.date(2020, 1, 1), datetime.date(2020, 12, 31)
        )
        assert any(a.identifier == "CVE-2020-11022" for a in window)


class TestPaperFacts:
    """Assertions pinned to the paper's Table 2 / Section 6.4."""

    def test_28_library_vulnerabilities(self):
        # 27 CVEs + the unassigned jQuery-Migrate advisory; the paper's
        # caption counts 28 vulnerabilities on seven libraries.
        advisories = library_advisories()
        assert len(advisories) == 27
        assert len({a.library for a in advisories}) == 7

    def test_13_of_27_cves_incorrect(self):
        cves = [a for a in library_advisories() if a.has_cve_id]
        verdicts = [classify_accuracy(a) for a in cves]
        understated = verdicts.count(RangeAccuracy.UNDERSTATED)
        overstated = verdicts.count(RangeAccuracy.OVERSTATED)
        assert understated == 5
        assert overstated == 8
        assert understated + overstated == 13

    def test_migrate_advisory_understated(self):
        advisory = default_database().get("JQMIGRATE-2013-XSS")
        assert classify_accuracy(advisory) is RangeAccuracy.UNDERSTATED

    def test_jquery_has_8_cves(self):
        db = default_database()
        assert len(db.for_library("jquery")) == 8
        assert len(db.for_library("bootstrap")) == 7
        assert len(db.for_library("jquery-ui")) == 6

    def test_dominant_jquery_version_has_4_cves(self):
        matcher = VersionMatcher(default_database())
        assert matcher.count("jquery", "1.12.4") == 4

    def test_xss_dominates(self):
        advisories = library_advisories()
        xss = sum(1 for a in advisories if a.attack_type is AttackType.XSS)
        assert xss == 21  # 20 CVEs + the migrate advisory

    def test_prototype_redos_affects_all_versions_tvv(self):
        matcher = VersionMatcher(default_database())
        hits = matcher.match("prototype", "1.7.3", MatchMode.TVV)
        assert any(h.identifier == "CVE-2020-27511" for h in hits)

    def test_wordpress_table4_present(self):
        db = default_database()
        assert len(db.for_library("wordpress")) == 10

    def test_flash_advisories_present(self):
        db = default_database()
        assert len(db.for_library("flash-player")) == 10


class TestMatcher:
    def test_modes_differ_for_understated(self):
        matcher = VersionMatcher(default_database())
        # jQuery 2.2.3: safe per stated CVE-2014-6071 upper bound? The
        # TVV extends to 2.2.4, so TVV mode must match more advisories.
        cve = matcher.match("jquery", "2.0.0", MatchMode.CVE)
        tvv = matcher.match("jquery", "2.0.0", MatchMode.TVV)
        assert {h.identifier for h in cve} != {h.identifier for h in tvv}

    def test_unparseable_version_matches_nothing(self):
        matcher = VersionMatcher(default_database())
        assert matcher.match("jquery", "not-a-version") == ()

    def test_unknown_library_matches_nothing(self):
        matcher = VersionMatcher(default_database())
        assert matcher.match("left-pad", "1.0.0") == ()

    def test_memoization(self):
        matcher = VersionMatcher(default_database())
        matcher.match("jquery", "1.12.4")
        size = matcher.cache_size()
        matcher.match("jquery", "1.12.4")
        assert matcher.cache_size() == size

    def test_unversioned_only_unbounded_ranges(self):
        matcher = VersionMatcher(default_database())
        hits = matcher.match_unversioned("prototype", MatchMode.TVV)
        assert [h.identifier for h in hits] == ["CVE-2020-27511"]
        assert matcher.match_unversioned("jquery", MatchMode.TVV) == ()

    def test_is_vulnerable(self):
        matcher = VersionMatcher(default_database())
        assert matcher.is_vulnerable("jquery", "1.12.4")
        assert not matcher.is_vulnerable("jquery", "3.6.0")
