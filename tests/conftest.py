"""Shared fixtures.

A single small scenario is crawled once per test session and reused by
every analysis test — the pipeline is deterministic, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, Study
from repro.fingerprint import FingerprintEngine
from repro.vulndb import VersionMatcher, default_database
from repro.webgen import WebEcosystem


SMALL_POPULATION = 500
SEED = 123


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig(population=SMALL_POPULATION, seed=SEED)


@pytest.fixture(scope="session")
def ecosystem(small_config) -> WebEcosystem:
    return WebEcosystem(small_config)


@pytest.fixture(scope="session")
def study(small_config) -> Study:
    """A fully crawled small study (manifest mode, all 201 weeks)."""
    study = Study(small_config)
    study.run()
    return study


@pytest.fixture(scope="session")
def store(study):
    return study.store


@pytest.fixture(scope="session")
def engine() -> FingerprintEngine:
    return FingerprintEngine()


@pytest.fixture(scope="session")
def database():
    return default_database()


@pytest.fixture(scope="session")
def matcher(database) -> VersionMatcher:
    return VersionMatcher(database)
