"""Shared fixtures.

A single small scenario is crawled once per test session and reused by
every analysis test — the pipeline is deterministic, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, Study
from repro.fingerprint import FingerprintEngine
from repro.vulndb import VersionMatcher, default_database
from repro.webgen import WebEcosystem


SERVE_MIX_SEED = 7


SMALL_POPULATION = 500
SEED = 123


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig(population=SMALL_POPULATION, seed=SEED)


@pytest.fixture(scope="session")
def ecosystem(small_config) -> WebEcosystem:
    return WebEcosystem(small_config)


@pytest.fixture(scope="session")
def study(small_config) -> Study:
    """A fully crawled small study (manifest mode, all 201 weeks)."""
    study = Study(small_config)
    study.run()
    return study


@pytest.fixture(scope="session")
def store(study):
    return study.store


@pytest.fixture(scope="session")
def engine() -> FingerprintEngine:
    return FingerprintEngine()


@pytest.fixture(scope="session")
def database():
    return default_database()


@pytest.fixture(scope="session")
def matcher(database) -> VersionMatcher:
    return VersionMatcher(database)


# --- serving fixtures -------------------------------------------------
#
# The serve tests and benchmarks/bench_serve.py exercise the same
# artifacts a production deployment would: a binary store persisted to
# disk (format v2) plus the run's canonical crawl metrics, and a seeded
# Zipf request mix.  Persisting once per session keeps the suite fast
# and guarantees every consumer queries byte-identical inputs.


@pytest.fixture(scope="session")
def served_run(study, tmp_path_factory):
    """(store_path, crawl_metrics_path) for the canned crawl run."""
    from repro.crawler.persistence import save_store

    root = tmp_path_factory.mktemp("served-run")
    store_path = root / "store.bin"
    metrics_path = root / "crawl-metrics.json"
    save_store(study.store, store_path)
    metrics_path.write_text(study.crawl_report.metrics.canonical_json())
    return store_path, metrics_path


@pytest.fixture(scope="session")
def serve_app(served_run, small_config, database):
    """A ServeApp loaded from the persisted artifacts (simulated clock)."""
    from repro.serve import ServeApp

    store_path, metrics_path = served_run
    return ServeApp.from_files(
        store_path,
        metrics_path,
        calendar=small_config.calendar,
        database=database,
    )


@pytest.fixture(scope="session")
def request_mix(store, database):
    """The seeded Zipf request mix shared by tests and bench_serve."""
    from repro.serve import build_mix

    return build_mix(store, database, seed=SERVE_MIX_SEED)
