"""Version range parsing and containment (Table 2 notation)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VersionError
from repro.semver import AllVersions, NoVersions, Version, parse_range


class TestParsing:
    def test_less_than(self):
        r = parse_range("< 1.9.0")
        assert r.contains("1.8.3")
        assert not r.contains("1.9.0")

    def test_less_equal(self):
        r = parse_range("<= 1.7.3")
        assert r.contains("1.7.3")
        assert not r.contains("1.7.4")

    def test_greater_than(self):
        r = parse_range("> 2.0")
        assert r.contains("2.0.1")
        assert not r.contains("2.0")

    def test_tilde_interval_inclusive_exclusive(self):
        r = parse_range("1.0.3 ~ 3.5.0")
        assert r.contains("1.0.3")
        assert r.contains("3.4.1")
        assert not r.contains("3.5.0")
        assert not r.contains("1.0.2")

    def test_and_compound(self):
        r = parse_range(">= 1.5.0 and < 2.2.4")
        assert r.contains("1.5.0")
        assert r.contains("2.2.3")
        assert not r.contains("2.2.4")
        assert not r.contains("1.4.2")

    def test_comma_union(self):
        r = parse_range("< 3.4.1, 4.0.0 ~ 4.3.1")
        assert r.contains("3.3.7")
        assert r.contains("4.2.1")
        assert not r.contains("3.4.1")
        assert not r.contains("4.3.1")

    def test_all_versions(self):
        r = parse_range("all versions")
        assert r.contains("0.0.1") and r.contains("99.0")

    def test_exact_version(self):
        r = parse_range("== 1.4.1")
        assert r.contains("1.4.1")
        assert not r.contains("1.4.0")

    def test_bare_version_is_exact(self):
        r = parse_range("2.2")
        assert r.contains("2.2.0")
        assert not r.contains("2.2.1")

    def test_none(self):
        r = parse_range("none")
        assert r.is_empty
        assert not r.contains("1.0")

    @pytest.mark.parametrize("bad", ["", "  ", "< ", ">= x and < y"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(VersionError):
            parse_range(bad)

    def test_conflicting_bounds_rejected(self):
        with pytest.raises(VersionError):
            parse_range(">= 1.0 and >= 2.0")

    def test_empty_interval_rejected(self):
        with pytest.raises(VersionError):
            parse_range("3.0 ~ 1.0")


class TestSetOperations:
    def test_filter_sorts_and_selects(self):
        r = parse_range("< 2.0")
        kept = r.filter(["2.1", "1.9", "0.5", "1.0"])
        assert [str(v) for v in kept] == ["0.5", "1.0", "1.9"]

    def test_describe_roundtrip_source(self):
        text = ">= 1.5.0 and < 2.2.4"
        assert parse_range(text).describe() == text

    def test_contains_dunder(self):
        r = parse_range("< 2.0")
        assert "1.0" in r
        assert Version("1.0") in r
        assert 42 not in r

    def test_all_none_helpers(self):
        assert AllVersions().contains("5.5.5")
        assert NoVersions().is_empty

    def test_equality_and_hash(self):
        assert parse_range("< 1.0") == parse_range("< 1.0")
        assert hash(parse_range("< 1.0")) == hash(parse_range("< 1.0"))


@given(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=40),
)
def test_interval_containment_property(low, span, probe):
    """Property: x in [low, high) iff low <= x < high."""
    high = low + span + 1
    r = parse_range(f"{low}.0 ~ {high}.0")
    inside = low <= probe < high
    assert r.contains(f"{probe}.0") == inside


@given(st.integers(min_value=0, max_value=99), st.integers(min_value=0, max_value=99))
def test_union_is_or(a, b):
    """Property: membership in a union == membership in either part."""
    r = parse_range(f"< {a}.0, < {b}.0")
    for probe in {0, a - 1, a, b - 1, b, max(a, b) + 1}:
        if probe < 0:
            continue
        expected = probe < a or probe < b
        assert r.contains(f"{probe}.0") == expected
