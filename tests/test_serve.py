"""The query service: endpoint contracts, HTTP caching, load replay.

Golden contract tests pin every route's observable surface — status,
Content-Type, strong ETag, canonical body bytes — against payloads
recomputed independently from the store, so a formatting or ordering
regression in the serving layer cannot hide behind "the JSON still
parses".  The cache tests prove the TTL cache changes accounting but
never bytes, and the replay tests prove two same-seed load runs are
digest-identical.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading

import pytest

from repro.analysis import vulnerable
from repro.errors import ConfigError, ServeError
from repro.obs import validate_serve_metrics
from repro.serve import (
    ROUTES,
    LoadGenerator,
    ResponseCache,
    ServeApp,
    SimulatedServeClock,
    build_mix,
    canonical_bytes,
    make_etag,
    make_server,
)
from repro.serve.caching import CACHE_EXPIRED, CACHE_HIT, CACHE_MISS
from repro.vulndb import MatchMode

from conftest import SERVE_MIX_SEED


def canonical(payload) -> bytes:
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def assert_contract(response, status=200):
    """Every JSON response obeys the canonical-bytes/ETag contract."""
    assert response.status == status
    assert response.header("Content-Type") == "application/json; charset=utf-8"
    body = response.body
    assert body.endswith(b"\n")
    assert canonical(json.loads(body)) == body  # canonical encoding
    if status == 200:
        expected = '"' + hashlib.sha256(body).hexdigest() + '"'
        assert response.etag == expected


@pytest.fixture(scope="module")
def app(store, database):
    """A fresh in-memory app per module so counters start at zero."""
    return ServeApp(store, database=database)


class TestEndpointContracts:
    def test_index_lists_every_route(self, app):
        response = app.get("/")
        assert_contract(response)
        payload = response.json()
        templates = sorted(r.template for r in ROUTES if r.segments)
        assert payload["endpoints"] == templates
        assert payload["service"] == "repro-serve"

    def test_healthz(self, app, store, database):
        response = app.get("/healthz")
        assert_contract(response)
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["observed_domains"] == len(store.observed_domains)
        assert payload["total_observations"] == store.total_observations
        assert payload["weeks"] == len(store.calendar.weeks)
        assert payload["crawl_metrics_loaded"] is False

    def test_report_matches_analysis(self, app, store):
        response = app.get("/report")
        assert_contract(response)
        payload = response.json()
        prev = vulnerable.prevalence(store)
        assert payload["vulnerable_share"]["cve"] == prev.average_share[MatchMode.CVE]
        assert payload["vulnerable_share"]["tvv"] == prev.average_share[MatchMode.TVV]
        assert payload["study"]["total_observations"] == store.total_observations
        assert set(payload["update_delays"]) == {"cve", "tvv"}

    def test_week_overview(self, app, store):
        agg = store.ordered_weeks()[0]
        response = app.get(f"/weeks/{agg.week.ordinal}/overview")
        assert_contract(response)
        payload = response.json()
        assert payload["ordinal"] == agg.week.ordinal
        assert payload["date"] == agg.week.date.isoformat()
        assert payload["collected"] == agg.collected
        assert payload["vulnerable_sites"]["cve"] == agg.vulnerable_sites[MatchMode.CVE]
        top = payload["top_libraries"]
        assert top == sorted(top, key=lambda e: (-e["sites"], e["library"]))
        assert len(top) <= 10

    def test_library_trend(self, app, store):
        response = app.get("/libraries/jquery/trend")
        assert_contract(response)
        payload = response.json()
        assert payload["library"] == "jquery"
        assert payload["users"] == store.library_series("jquery")
        assert payload["total_user_weeks"] == sum(payload["users"])
        assert len(payload["dates"]) == len(payload["users"])
        assert len(payload["top_versions"]) <= 5
        counts = [v["site_weeks"] for v in payload["top_versions"]]
        assert counts == sorted(counts, reverse=True)
        for entry in payload["top_versions"]:
            assert entry["series"] == store.version_series(
                "jquery", entry["version"]
            )

    def test_trend_top_parameter(self, app):
        response = app.get("/libraries/jquery/trend?top=2")
        assert_contract(response)
        assert len(response.json()["top_versions"]) <= 2

    def test_cve(self, app, database):
        advisory = sorted(database, key=lambda a: a.identifier)[0]
        response = app.get(f"/cves/{advisory.identifier}")
        assert_contract(response)
        payload = response.json()
        assert payload["advisory"]["identifier"] == advisory.identifier
        assert payload["advisory"]["library"] == advisory.library
        assert len(payload["dates"]) == len(payload["stated_counts"])
        assert len(payload["dates"]) == len(payload["true_counts"])
        # Case-insensitive lookup serves the same bytes.
        lowered = app.get(f"/cves/{advisory.identifier.lower()}")
        assert lowered.body == response.body

    def test_domain_scan(self, app, store):
        rank = sorted(store.observed_domains)[0]
        response = app.get(f"/domains/{rank}/scan")
        assert_contract(response)
        payload = response.json()
        assert payload["rank"] == rank
        ranks = [f["severity_rank"] for f in payload["findings"]]
        assert ranks == sorted(ranks, reverse=True)
        assert sum(payload["summary"].values()) == len(payload["findings"])
        if payload["findings"]:
            assert payload["worst"] == payload["findings"][0]["severity"]
        else:
            assert payload["worst"] == "none"

    def test_domain_scan_by_hostname(self, app, store):
        rank = sorted(store.observed_domains)[0]
        named = app.get(f"/domains/site{rank:07d}.example.com/scan")
        numeric = app.get(f"/domains/{rank}/scan")
        assert named.status == 200
        # Bodies differ only in the echoed "domain" key.
        by_name = named.json()
        by_rank = numeric.json()
        by_name.pop("domain")
        by_rank.pop("domain")
        assert by_name == by_rank

    def test_metrics_validates_against_schema(self, app):
        response = app.get("/metrics")
        assert_contract(response)
        assert validate_serve_metrics(response.json()) == []

    def test_every_route_has_a_contract_test(self):
        """Meta-test: the suite covers the full routing table."""
        tested = {
            "index",
            "healthz",
            "metrics",
            "crawl_metrics",
            "report",
            "week",
            "trend",
            "cve",
            "scan",
        }
        assert {route.name for route in ROUTES} == tested


class TestErrors:
    def assert_error(self, response, status, fragment=""):
        assert response.status == status
        assert response.header("Content-Type") == (
            "application/json; charset=utf-8"
        )
        assert response.header("Cache-Control") == "no-store"
        payload = response.json()["error"]
        assert payload["status"] == status
        assert fragment in payload["message"]
        assert canonical(response.json()) == response.body

    def test_unknown_path(self, app):
        self.assert_error(app.get("/no-such-endpoint"), 404, "no such endpoint")

    def test_unknown_domain(self, app):
        self.assert_error(
            app.get("/domains/9999999/scan"), 404, "never observed"
        )

    def test_unknown_cve(self, app):
        self.assert_error(app.get("/cves/CVE-0000-00000"), 404, "advisory")

    def test_unknown_library(self, app):
        self.assert_error(
            app.get("/libraries/no-such-library/trend"), 404, "never observed"
        )

    def test_unknown_week(self, app, store):
        beyond = len(store.calendar.weeks) + 5
        self.assert_error(app.get(f"/weeks/{beyond}/overview"), 404, "week")
        self.assert_error(app.get("/weeks/later/overview"), 404, "week")

    def test_crawl_metrics_absent(self, app):
        self.assert_error(app.get("/crawl-metrics"), 404, "--crawl-metrics")

    def test_method_not_allowed(self, app):
        for method in ("POST", "PUT", "DELETE"):
            response = app.handle(method, "/report")
            self.assert_error(response, 405, "GET")
            assert response.header("Allow") == "GET"

    def test_malformed_query(self, app):
        self.assert_error(app.get("/libraries/jquery/trend?top"), 400, "query")
        self.assert_error(
            app.get("/libraries/jquery/trend?bogus=1"), 400, "bogus"
        )
        self.assert_error(
            app.get("/libraries/jquery/trend?top=1&top=2"), 400, "top"
        )

    def test_bad_top_values(self, app):
        self.assert_error(
            app.get("/libraries/jquery/trend?top=never"), 400, "integer"
        )
        self.assert_error(
            app.get("/libraries/jquery/trend?top=0"), 400, "1..50"
        )
        self.assert_error(
            app.get("/libraries/jquery/trend?top=51"), 400, "1..50"
        )

    def test_query_on_queryless_route(self, app):
        self.assert_error(app.get("/report?x=1"), 400, "x")

    def test_errors_never_cached(self, store):
        app = ServeApp(store, precompute=False)
        app.get("/cves/CVE-0000-00000")
        assert len(app.cache) == 0


class TestHttpCaching:
    def test_if_none_match_304(self, app):
        first = app.get("/report")
        revalidated = app.get("/report", if_none_match=first.etag)
        assert revalidated.status == 304
        assert revalidated.body == b""
        assert revalidated.etag == first.etag
        assert revalidated.header("Content-Type") is None

    def test_stale_etag_serves_full_body(self, app):
        first = app.get("/report")
        response = app.get("/report", if_none_match='"stale"')
        assert response.status == 200
        assert response.body == first.body

    def test_ttl_expiry_reserves_identical_bytes(self, store):
        clock = SimulatedServeClock()
        app = ServeApp(
            store, cache_ttl=0.001, clock=clock, precompute=False
        )
        first = app.get("/report")
        hit = app.get("/report")
        clock.advance_us(2_000)
        refreshed = app.get("/report")
        assert (first.cache, hit.cache) == (CACHE_MISS, CACHE_HIT)
        assert refreshed.cache == CACHE_EXPIRED
        assert refreshed.body == first.body
        assert refreshed.etag == first.etag

    def test_cache_disabled_is_bypass(self, store):
        app = ServeApp(store, cache_ttl=0.0, precompute=False)
        response = app.get("/report")
        assert response.cache == "bypass"
        assert response.header("Cache-Control") == "no-cache"
        assert len(app.cache) == 0

    def test_uncacheable_routes_bypass(self, store):
        app = ServeApp(store, cache_ttl=60.0, precompute=False)
        for target in ("/healthz", "/metrics"):
            assert app.get(target).cache == "bypass", target
        assert len(app.cache) == 0

    def test_cache_control_reflects_ttl(self, store):
        app = ServeApp(store, cache_ttl=60.0, precompute=False)
        assert app.get("/report").header("Cache-Control") == "max-age=60"

    def test_precomputed_equals_cold(self, store, database):
        hot = ServeApp(store, database=database, precompute=True)
        cold = ServeApp(store, database=database, precompute=False)
        rank = sorted(store.observed_domains)[0]
        agg = store.ordered_weeks()[0]
        for target in (
            "/",
            "/report",
            f"/weeks/{agg.week.ordinal}/overview",
            "/libraries/jquery/trend",
            f"/domains/{rank}/scan",
        ):
            assert hot.get(target).body == cold.get(target).body, target

    def test_fifo_eviction(self):
        cache = ResponseCache(ttl_us=10**9, max_entries=2)
        cache.put("a", b"1", "e1", now_us=0)
        cache.put("b", b"2", "e2", now_us=1)
        # Touching "a" must NOT save it: eviction order is insertion
        # order, so accounting stays independent of the read pattern.
        assert cache.get("a", now_us=2)[1] == CACHE_HIT
        evicted = cache.put("c", b"3", "e3", now_us=3)
        assert evicted == 1
        assert cache.get("a", now_us=4)[0] is None
        assert cache.get("b", now_us=4)[0] is not None


class TestReplayDeterminism:
    def test_same_seed_same_digests(self, store, database, request_mix):
        first = LoadGenerator(
            ServeApp(store, database=database), request_mix
        ).run(250)
        second = LoadGenerator(
            ServeApp(store, database=database), request_mix
        ).run(250)
        assert first.digests == second.digests
        assert first.digest == second.digest
        assert first.status_counts == second.status_counts
        assert first.hit_ratio == second.hit_ratio

    def test_same_seed_same_metrics(self, store, database, request_mix):
        apps = [ServeApp(store, database=database) for _ in range(2)]
        for app in apps:
            LoadGenerator(app, request_mix).run(250)
        assert (
            apps[0].canonical_metrics_json() == apps[1].canonical_metrics_json()
        )

    def test_different_seed_different_sequence(self, store, database):
        mixes = [build_mix(store, database, seed=s) for s in (1, 2)]
        runs = [
            LoadGenerator(ServeApp(store, database=database), mix).run(150)
            for mix in mixes
        ]
        assert runs[0].digests != runs[1].digests

    def test_replay_covers_error_paths(self, store, database, request_mix):
        result = LoadGenerator(
            ServeApp(store, database=database), request_mix
        ).run(400)
        assert result.status_counts.get(404, 0) > 0
        assert result.status_counts.get(400, 0) > 0
        assert result.not_modified > 0
        assert result.requests == 400

    def test_cache_on_off_identical_bytes(self, store, database):
        mix = build_mix(
            store, database, seed=SERVE_MIX_SEED, include_metrics=False
        )
        cached = LoadGenerator(
            ServeApp(store, database=database), mix
        ).run(250)
        uncached = LoadGenerator(
            ServeApp(store, database=database, cache_ttl=0.0), mix
        ).run(250)
        assert cached.digests == uncached.digests
        assert uncached.cache_hits == 0

    def test_result_to_dict_roundtrips_json(self, store, database, request_mix):
        result = LoadGenerator(
            ServeApp(store, database=database), request_mix
        ).run(50)
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["digest"] == result.digest


class TestServedArtifacts:
    def test_from_files_serves_crawl_metrics(self, serve_app, study):
        response = serve_app.get("/crawl-metrics")
        assert_contract(response)
        expected = json.loads(study.crawl_report.metrics.canonical_json())
        assert response.json() == expected
        assert serve_app.get("/healthz").json()["crawl_metrics_loaded"] is True

    def test_from_files_matches_in_memory(self, serve_app, store, database, study):
        """Store provenance (disk round-trip) cannot change served bytes."""
        mix = build_mix(
            store, database, seed=SERVE_MIX_SEED, include_metrics=False
        )
        crawl_metrics = json.loads(study.crawl_report.metrics.canonical_json())
        from_disk = LoadGenerator(serve_app, mix).run(200)
        in_memory = LoadGenerator(
            ServeApp(store, database=database, crawl_metrics=crawl_metrics),
            mix,
        ).run(200)
        assert from_disk.digests == in_memory.digests

    def test_from_files_rejects_bad_metrics(self, served_run, tmp_path):
        store_path, _ = served_run
        bad = tmp_path / "bad-metrics.json"
        bad.write_text("{not json")
        with pytest.raises(ServeError):
            ServeApp.from_files(store_path, bad)
        bad.write_text('{"format": 999}')
        with pytest.raises(ServeError):
            ServeApp.from_files(store_path, bad)


class TestHttpServer:
    @pytest.fixture()
    def server(self, serve_app):
        server = make_server(serve_app)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()

    def test_round_trip_over_sockets(self, server, serve_app):
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            body = response.read()
            assert response.status == 200
            assert body == serve_app.get("/healthz").body
            etag = response.getheader("ETag")
            assert etag == make_etag(body)

            conn.request("GET", "/healthz", headers={"If-None-Match": etag})
            revalidated = conn.getresponse()
            assert revalidated.status == 304
            assert revalidated.read() == b""

            conn.request("POST", "/report")
            rejected = conn.getresponse()
            rejected.read()
            assert rejected.status == 405
            assert rejected.getheader("Allow") == "GET"
        finally:
            conn.close()


class TestServeOptions:
    def test_defaults(self):
        from repro.options import ServeOptions

        options = ServeOptions()
        assert options.port == 8737
        assert options.cache_ttl == 60.0
        assert options.top_versions == 5

    def test_validation(self):
        from repro.options import ServeOptions

        with pytest.raises(ConfigError):
            ServeOptions(port=99999)
        with pytest.raises(ConfigError):
            ServeOptions(cache_ttl=-1.0)
        with pytest.raises(ConfigError):
            ServeOptions(top_versions=0)

    def test_cli_flags_round_trip(self):
        import argparse

        from repro.options import (
            add_serve_arguments,
            serve_options_from_namespace,
        )

        parser = argparse.ArgumentParser()
        add_serve_arguments(parser)
        args = parser.parse_args(
            ["--store", "run/store.bin", "--port", "9000", "--cache-ttl", "5"]
        )
        options = serve_options_from_namespace(args)
        assert options.store == "run/store.bin"
        assert options.port == 9000
        assert options.cache_ttl == 5.0

    def test_cli_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--store", "run/store.bin"]
        )
        assert args.func.__name__ == "_cmd_serve"


def test_canonical_bytes_helper():
    body = canonical_bytes({"b": 1, "a": [2, 3]})
    assert body == b'{"a":[2,3],"b":1}\n'
    assert make_etag(body) == '"' + hashlib.sha256(body).hexdigest() + '"'
