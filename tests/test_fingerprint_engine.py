"""The fingerprint engine on hand-written pages."""

import pytest

from repro.fingerprint import FingerprintEngine, ScriptAccess


@pytest.fixture(scope="module")
def fp(engine):
    def run(html, url="https://www.example.com/"):
        return engine.fingerprint(html, url)

    return run


class TestLibraryDetection:
    def test_jquery_from_filename(self, fp):
        profile = fp('<script src="/js/jquery-1.12.4.min.js"></script>')
        (det,) = profile.libraries
        assert det.library == "jquery"
        assert det.version == "1.12.4"
        assert det.internal

    def test_jquery_family_disambiguation(self, fp):
        html = (
            '<script src="/js/jquery-3.5.1.min.js"></script>'
            '<script src="/js/jquery-migrate-3.3.2.min.js"></script>'
            '<script src="/js/jquery-ui-1.12.1.min.js"></script>'
            '<script src="/js/jquery.cookie-1.4.1.min.js"></script>'
        )
        profile = fp(html)
        found = {d.library: d.version for d in profile.libraries}
        assert found == {
            "jquery": "3.5.1",
            "jquery-migrate": "3.3.2",
            "jquery-ui": "1.12.1",
            "jquery-cookie": "1.4.1",
        }

    def test_cdn_classification(self, fp):
        html = '<script src="https://ajax.googleapis.com/ajax/libs/jquery/1.12.4/jquery.min.js"></script>'
        (det,) = fp(html).libraries
        assert det.external and det.cdn_host == "ajax.googleapis.com"
        assert det.version == "1.12.4"

    def test_wordpress_ver_query(self, fp):
        html = '<script src="/wp-includes/js/jquery/jquery.min.js?ver=1.12.4"></script>'
        (det,) = fp(html).libraries
        assert det.version == "1.12.4"

    def test_unversioned_detection(self, fp):
        html = '<script src="/assets/js/bootstrap.min.js"></script>'
        (det,) = fp(html).libraries
        assert det.library == "bootstrap"
        assert det.version is None

    def test_subdomain_www_is_internal(self, fp):
        html = '<script src="https://www.example.com/js/jquery-1.0.min.js"></script>'
        (det,) = fp(html).libraries
        assert det.internal

    def test_integrity_and_crossorigin(self, fp):
        html = (
            '<script src="https://cdnjs.cloudflare.com/ajax/libs/jquery/3.5.1/jquery.min.js"'
            ' integrity="sha384-abc" crossorigin="anonymous"></script>'
        )
        (det,) = fp(html).libraries
        assert det.has_integrity
        assert det.crossorigin == "anonymous"

    def test_inline_banner(self, fp):
        profile = fp("<script>/*! jQuery v3.3.1 | (c) */ window.$=1;</script>")
        (det,) = profile.libraries
        assert det.library == "jquery"
        assert det.version == "3.3.1"
        assert det.evidence == "inline-banner"

    def test_untrusted_github_host(self, fp):
        html = '<script src="https://blueimp.github.io/lib/x.js" ></script>'
        profile = fp(html)
        assert profile.untrusted_scripts == (
            ("blueimp.github.io", "https://blueimp.github.io/lib/x.js", False),
        )

    def test_untrusted_with_integrity_flag(self, fp):
        html = '<script src="https://a.github.io/x.js" integrity="sha384-x"></script>'
        assert fp(html).untrusted_scripts[0][2] is True


class TestResourceTypes:
    def test_full_mix(self, fp):
        html = (
            '<link rel="stylesheet" href="/s.css">'
            '<link rel="shortcut icon" href="/favicon.ico">'
            '<link rel="alternate" type="application/rss+xml" href="/feed.xml">'
            '<script src="/widgets/a.php"></script>'
            '<img src="/logo.svg">'
            '<script src="/WebResource.axd?d=x"></script>'
        )
        types = fp(html).resource_types
        assert {"css", "favicon", "xml", "imported-html", "svg", "axd", "javascript"} <= types

    def test_inline_style_is_css(self, fp):
        assert "css" in fp("<style>body{}</style>").resource_types

    def test_plain_page_has_no_flash(self, fp):
        assert not fp("<html><body>hi</body></html>").uses_flash


class TestWordPress:
    def test_generator_meta(self, fp):
        html = '<meta name="generator" content="WordPress 5.8.1">'
        assert fp(html).wordpress_version == "5.8.1"

    def test_no_wordpress(self, fp):
        assert fp("<html></html>").wordpress_version is None


class TestFlash:
    def test_object_embed(self, fp):
        html = (
            '<object width="400" height="300">'
            '<param name="movie" value="/m.swf">'
            '<param name="AllowScriptAccess" value="always"></object>'
        )
        profile = fp(html)
        (embed,) = profile.flash_embeds
        assert embed.tag == "object"
        assert embed.insecure
        assert embed.script_access is ScriptAccess.ALWAYS
        assert "flash" in profile.resource_types

    def test_embed_tag(self, fp):
        html = '<embed src="/m.swf" width="10" height="10" allowscriptaccess="never">'
        (embed,) = fp(html).flash_embeds
        assert embed.tag == "embed"
        assert embed.script_access is ScriptAccess.NEVER
        assert not embed.insecure

    def test_unspecified_access(self, fp):
        html = '<embed src="/m.swf" width="10" height="10">'
        (embed,) = fp(html).flash_embeds
        assert not embed.script_access_specified
        assert embed.script_access is None

    def test_invisible_zero_size(self, fp):
        html = '<embed src="/m.swf" width="0" height="0">'
        assert not fp(html).flash_embeds[0].visible

    def test_invisible_css(self, fp):
        html = '<object style="display:none"><param name="movie" value="/m.swf"></object>'
        assert not fp(html).flash_embeds[0].visible

    def test_external_swf(self, fp):
        html = '<embed src="https://other.example/m.swf" width="1" height="1">'
        assert fp(html).flash_embeds[0].external


class TestCounts:
    def test_script_counts(self, fp):
        html = (
            '<script src="/a.js"></script>'
            '<script src="https://cdn.example/b.js"></script>'
            "<script>inline()</script>"
        )
        profile = fp(html)
        assert profile.script_count == 2
        assert profile.external_script_count == 1

    def test_as_dict_serializable(self, fp):
        import json

        html = '<script src="/js/jquery-1.12.4.min.js"></script>'
        assert json.dumps(fp(html).as_dict())


class TestAnchorPrefilter:
    """The literal-substring prefilter must never veto a real match."""

    def test_anchors_sound_over_generated_urls(self):
        """For every script URL webgen can emit, prefilter ⊇ match."""
        from repro.config import ScenarioConfig
        from repro.fingerprint.signatures import default_signatures
        from repro.netsim.url import parse_url
        from repro.webgen import WebEcosystem
        from repro.webgen.html import script_url

        signatures = default_signatures()
        ecosystem = WebEcosystem(ScenarioConfig(population=150, seed=42))
        targets = set()
        for domain in ecosystem.population[:150]:
            for ordinal in (0, 80, 200):
                manifest = ecosystem.manifest(domain, ordinal)
                for inclusion in manifest.libraries:
                    url = script_url(inclusion, manifest.wordpress_version)
                    resolved = parse_url(
                        url if "//" in url else f"https://{domain.name}{url}"
                    )
                    target = resolved.path + (
                        "?" + resolved.query if resolved.query else ""
                    )
                    targets.add(
                        (resolved.host, resolved.path, resolved.query,
                         resolved.filename, target)
                    )
        assert len(targets) > 100
        checked = 0
        for host, path, query, filename, target in targets:
            lower = target.lower()
            for signature in signatures:
                if signature.match_url(host, path, query, filename):
                    assert signature.could_match_url(lower), (
                        signature.library, target
                    )
                    checked += 1
        assert checked > 100

    def test_anchor_variants_cover_separator_spellings(self):
        from repro.fingerprint.signatures import default_signatures

        by_name = {s.library: s for s in default_signatures()}
        assert "jquery.ui" in by_name["jquery-ui"].anchors
        assert "jqueryui" in by_name["jquery-ui"].anchors
        assert "require" in by_name["requirejs"].anchors
        # Direct construction (no _sig) leaves anchors empty => no veto.
        from repro.fingerprint import LibrarySignature

        bare = LibrarySignature(library="x", url_patterns=(), token="x")
        assert bare.could_match_url("anything")
