"""URL parsing and joining."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.netsim import parse_url, urljoin


class TestParse:
    def test_basic(self):
        url = parse_url("https://example.com/a/b.js?x=1#frag")
        assert url.scheme == "https"
        assert url.host == "example.com"
        assert url.path == "/a/b.js"
        assert url.query == "x=1"
        assert url.fragment == "frag"

    def test_default_path(self):
        assert parse_url("https://example.com").path == "/"

    def test_port(self):
        url = parse_url("http://example.com:8080/x")
        assert url.port == 8080
        assert url.origin == "http://example.com:8080"

    def test_default_port_hidden_in_origin(self):
        assert parse_url("https://example.com:443/").origin == "https://example.com"

    def test_host_lowercased(self):
        assert parse_url("https://EXAMPLE.com/").host == "example.com"

    def test_protocol_relative(self):
        url = parse_url("//cdn.example.com/lib.js")
        assert url.scheme == "https"
        assert url.host == "cdn.example.com"

    def test_schemeless_with_host(self):
        url = parse_url("example.com/x.js")
        assert url.host == "example.com"
        assert url.path == "/x.js"

    def test_userinfo_stripped(self):
        assert parse_url("https://user:pw@example.com/").host == "example.com"

    @pytest.mark.parametrize("bad", ["", "   ", "/just/a/path", "no-dots"])
    def test_rejects_hostless(self, bad):
        with pytest.raises(NetworkError):
            parse_url(bad)

    def test_filename(self):
        assert parse_url("https://x.com/a/jquery.min.js").filename == "jquery.min.js"
        assert parse_url("https://x.com/a/").filename == ""

    def test_request_target(self):
        assert parse_url("https://x.com/a?b=1").request_target == "/a?b=1"

    def test_str_roundtrip(self):
        text = "https://example.com/a/b?c=d#e"
        assert str(parse_url(text)) == text


class TestJoin:
    BASE = parse_url("https://site.example/dir/page.html")

    def test_absolute_reference(self):
        joined = urljoin(self.BASE, "https://other.example/x.js")
        assert joined.host == "other.example"

    def test_root_relative(self):
        assert urljoin(self.BASE, "/js/a.js").path == "/js/a.js"

    def test_path_relative(self):
        assert urljoin(self.BASE, "a.js").path == "/dir/a.js"

    def test_dotdot(self):
        assert urljoin(self.BASE, "../up.js").path == "/up.js"

    def test_protocol_relative(self):
        joined = urljoin(self.BASE, "//cdn.example/x.js")
        assert joined.scheme == "https"
        assert joined.host == "cdn.example"

    def test_query_preserved(self):
        joined = urljoin(self.BASE, "/a.js?ver=1.12.4")
        assert joined.query == "ver=1.12.4"

    def test_empty_reference_is_base(self):
        assert urljoin(self.BASE, "") == self.BASE

    def test_query_only_reference(self):
        joined = urljoin(self.BASE, "?x=1")
        assert joined.path == self.BASE.path
        assert joined.query == "x=1"


_HOSTS = st.from_regex(r"[a-z]{2,8}\.(com|net|org)", fullmatch=True)
_PATHS = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=5), min_size=0, max_size=4
).map(lambda segs: "/" + "/".join(segs))


@given(_HOSTS, _PATHS)
def test_parse_roundtrip_property(host, path):
    url = parse_url(f"https://{host}{path}")
    reparsed = parse_url(str(url))
    assert reparsed.host == url.host
    assert reparsed.path == url.path


@given(_PATHS)
def test_join_root_relative_property(path):
    base = parse_url("https://a.com/x/y")
    assert urljoin(base, path or "/").path.startswith("/")
