"""Study orchestration, results, reporting, determinism."""

import pytest

from repro import ScenarioConfig, Study
from repro.errors import AnalysisError, ConfigError
from repro.reporting import StudyReport, Table, format_count, format_percent, sparkline
from repro.reporting.series import render_series
from repro.vulndb import MatchMode


class TestConfig:
    def test_behavior_mix_must_sum(self):
        from repro.config import BehaviorMix

        with pytest.raises(ConfigError):
            BehaviorMix(frozen=0.5, laggard=0.5, responsive=0.5)

    def test_population_positive(self):
        with pytest.raises(ConfigError):
            ScenarioConfig(population=0)

    def test_scale_factor(self):
        config = ScenarioConfig(population=782_300)
        assert config.scale_factor == pytest.approx(1.0)

    def test_platform_fractions_validated(self):
        from repro.config import PlatformConfig

        with pytest.raises(ConfigError):
            PlatformConfig(wordpress_share=1.5)


class TestStudy:
    def test_analyses_require_run(self):
        study = Study(ScenarioConfig(population=50, seed=2))
        with pytest.raises(AnalysisError):
            study.prevalence()
        with pytest.raises(AnalysisError):
            _ = study.crawl_report

    def test_results_summary(self, study):
        results = study.results()
        lines = results.summary_lines()
        assert any("41.2%" in line for line in lines)  # paper anchors cited
        assert results.vulnerable_share[MatchMode.TVV] >= results.vulnerable_share[
            MatchMode.CVE
        ]
        assert results.incorrect_cves == 13
        assert results.total_cves == 27

    def test_poc_lab_accessor(self, study):
        lab = study.poc_lab()
        assert len(lab.available_pocs()) == 26

    def test_hash_audit(self, study):
        audit = study.hash_audit(max_domains=40)
        assert audit.files_checked > 0
        assert audit.all_mismatches_benign  # the paper's Section 9 finding


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        config = ScenarioConfig(population=120, seed=99)
        first = Study(config)
        first.run(weeks=first.config.calendar.weeks[:10])
        second = Study(config)
        second.run(weeks=second.config.calendar.weeks[:10])
        for ordinal in range(10):
            a = first.store.weeks[ordinal]
            b = second.store.weeks[ordinal]
            assert a.collected == b.collected
            assert dict(a.version_counts) == dict(b.version_counts)
            assert a.vulnerable_sites == b.vulnerable_sites

    def test_different_seed_differs(self):
        base = ScenarioConfig(population=200, seed=1)
        other = ScenarioConfig(population=200, seed=2)
        a = Study(base)
        a.run(weeks=base.calendar.weeks[:3])
        b = Study(other)
        b.run(weeks=other.calendar.weeks[:3])
        assert dict(a.store.weeks[0].version_counts) != dict(
            b.store.weeks[0].version_counts
        )


class TestReportingPrimitives:
    def test_format_helpers(self):
        assert format_percent(0.412) == "41.2%"
        assert format_count(25337.4) == "25,337"

    def test_table_render(self):
        table = Table(["a", "bb"], title="T")
        table.add_row("x", 1)
        text = table.render()
        assert "T" in text and "a" in text and "x" in text
        assert len(table) == 1

    def test_table_cell_count_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 2, 1, 0])
        assert len(line) == 7
        assert line[0] != line[3]

    def test_sparkline_resamples(self):
        assert len(sparkline(list(range(500)), width=60)) == 60

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_render_series(self):
        text = render_series(["2018-03-05", "2018-03-12"], [1, 2], "x")
        assert "x" in text and "2018-03" in text


class TestStudyReport:
    @pytest.fixture(scope="class")
    def report(self, study):
        return StudyReport(study)

    def test_headline(self, report):
        assert "vulnerable" in report.headline()

    def test_table1(self, report):
        text = report.table1()
        assert "jquery" in text and "1.12.4" in text

    def test_table2(self, report):
        text = report.table2()
        assert "CVE-2020-7656" in text and "understated" in text

    def test_full_render(self, report):
        text = report.render()
        for marker in ("Figure 2", "Table 1", "Table 2", "Section 7", "Figure 8"):
            assert marker in text
