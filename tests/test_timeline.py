"""Study calendar."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.timeline import StudyCalendar, default_calendar


class TestDefaultCalendar:
    def test_201_kept_weeks(self):
        calendar = default_calendar()
        assert len(calendar) == 201
        assert calendar.scheduled_weeks == 207

    def test_spans_paper_period(self):
        calendar = default_calendar()
        assert calendar.first.date == datetime.date(2018, 3, 5)
        assert calendar.last.date.year == 2022
        assert calendar.last.date.month == 2

    def test_pruned_weeks_absent(self):
        calendar = default_calendar()
        kept_indices = {w.index for w in calendar}
        assert not kept_indices & set(calendar.pruned)

    def test_ordinals_contiguous(self):
        calendar = default_calendar()
        assert [w.ordinal for w in calendar] == list(range(201))

    def test_weekly_spacing(self):
        calendar = default_calendar()
        weeks = calendar.weeks
        for earlier, later in zip(weeks, weeks[1:]):
            delta = (later.date - earlier.date).days
            assert delta % 7 == 0 and 7 <= delta <= 14


class TestQueries:
    def test_week_for_date_exact(self):
        calendar = default_calendar()
        week = calendar.week_for_date(datetime.date(2020, 12, 8))
        assert week.date <= datetime.date(2020, 12, 8)
        assert (datetime.date(2020, 12, 8) - week.date).days < 14

    def test_week_for_date_before_start(self):
        calendar = default_calendar()
        assert calendar.week_for_date(datetime.date(2017, 1, 1)) == calendar.first

    def test_week_for_date_after_end(self):
        calendar = default_calendar()
        assert calendar.week_for_date(datetime.date(2023, 1, 1)) == calendar.last

    def test_last_month_is_four_weeks(self):
        calendar = default_calendar()
        last = calendar.last_month()
        assert len(last) == 4
        assert last[-1] == calendar.last

    def test_weeks_between(self):
        calendar = default_calendar()
        window = calendar.weeks_between(
            datetime.date(2020, 8, 1), datetime.date(2020, 12, 31)
        )
        assert all(
            datetime.date(2020, 8, 1) <= w.date <= datetime.date(2020, 12, 31)
            for w in window
        )
        assert len(window) > 15

    def test_contains(self):
        calendar = default_calendar()
        assert calendar.contains(datetime.date(2020, 1, 1))
        assert not calendar.contains(datetime.date(2017, 1, 1))

    def test_days_elapsed(self):
        calendar = default_calendar()
        week = calendar.week_at(10)
        assert calendar.days_elapsed(week, calendar.start) == (
            week.date - calendar.start
        ).days


class TestValidation:
    def test_zero_weeks_rejected(self):
        with pytest.raises(ConfigError):
            StudyCalendar(scheduled_weeks=0)

    def test_pruned_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            StudyCalendar(scheduled_weeks=10, pruned=(20,))

    def test_prune_everything_rejected(self):
        with pytest.raises(ConfigError):
            StudyCalendar(scheduled_weeks=2, pruned=(0, 1))

    def test_date_of_bounds(self):
        calendar = default_calendar()
        with pytest.raises(ConfigError):
            calendar.date_of(999)


@given(st.integers(min_value=0, max_value=1500))
def test_week_for_date_is_at_or_before(offset_days):
    """Property: the covering week's date never exceeds the query date
    (for dates at/after the start)."""
    calendar = default_calendar()
    date = calendar.start + datetime.timedelta(days=offset_days)
    week = calendar.week_for_date(date)
    assert week.date <= date
