"""Adaptive shard planning: weighted plans, cost models, ``plan_from``.

The weighted planner trades *where* the domain cut points fall for
balance, never *what* is covered: every plan — uniform or weighted — is
an exact partition of the ``weeks × domains`` grid, and the dataset the
crawl produces is byte-identical whichever plan executed it.  These
properties are enforced here end to end:

* any weighted plan is an exact partition (no gaps, no overlaps,
  ``shards[i].index == i``, contiguous week runs, ``shard_size`` bound);
* balanced-vs-uniform plans yield byte-identical stores and identical
  dataset-tier metrics, on every backend, fault-free and under chaos;
* ``plan_from`` round-trips: run → canonical metrics → replan → rerun
  is the same dataset, with plan provenance recorded in the manifest
  and kill/resume adopting the weighted plan unchanged;
* malformed or mismatched metrics documents fail with typed
  :class:`~repro.errors.ConfigError`\\ s, never silently degrade.
"""

from __future__ import annotations

import json

import pytest

import proptest

from repro import FaultPlan, ScenarioConfig
from repro.config import ExecutionConfig
from repro.crawler import Crawler
from repro.crawler.persistence import store_to_bytes
from repro.errors import ConfigError
from repro.obs import (
    COST_PER_CACHE_MISS,
    COST_PER_CELL,
    COST_PER_PAGE,
    METRICS_FORMAT,
    planner_profile,
    shard_cost_units,
)
from repro.runtime import CostModel, plan_shards
from repro.webgen import WebEcosystem


def _random_cost_vector(rng, n_domains):
    """Costs with the lumpiness real crawls show: dead cheap to heavy."""
    return tuple(
        rng.choice((0, 1, 1, 2, 5, 40, 200)) * CostModel.SCALE // 4
        for _ in range(n_domains)
    )


def _assert_exact_partition(shards, n_weeks, n_domains, shard_size=0):
    seen = set()
    for position, shard in enumerate(shards):
        assert shard.index == position
        assert shard.week_count > 0 and shard.domain_count > 0
        if shard_size:
            assert shard.cells <= shard_size
        for w in range(shard.week_start, shard.week_start + shard.week_count):
            for d in range(
                shard.domain_start, shard.domain_start + shard.domain_count
            ):
                assert (w, d) not in seen, f"cell ({w}, {d}) covered twice"
                seen.add((w, d))
    assert len(seen) == n_weeks * n_domains, "plan left cells uncovered"


class TestWeightedPartitionProperty:
    """Any weighted plan is an exact partition of the crawl grid."""

    def test_weighted_plans_partition_exactly(self):
        def prop(rng, seed):
            n_weeks = rng.randint(1, 12)
            n_domains = rng.randint(1, 120)
            workers = rng.randint(1, 6)
            shard_size = rng.choice((0, 0, rng.randint(5, 80)))
            model = CostModel(
                domain_cost=_random_cost_vector(rng, n_domains),
                source="prop",
            )
            weighted = plan_shards(
                n_weeks, n_domains, workers, shard_size, cost_model=model
            )
            _assert_exact_partition(weighted, n_weeks, n_domains, shard_size)

            uniform = plan_shards(n_weeks, n_domains, workers, shard_size)
            _assert_exact_partition(uniform, n_weeks, n_domains, shard_size)
            if shard_size == 0:
                # Same shard count as the uniform plan: the model moves
                # cut points, it never changes how many shards exist.
                assert len(weighted) == len(uniform)
            # Both plans cover the same grid: identical coverage sets.
            def coverage(shards):
                return {
                    (w, d)
                    for s in shards
                    for w in range(s.week_start, s.week_start + s.week_count)
                    for d in range(
                        s.domain_start, s.domain_start + s.domain_count
                    )
                }

            assert coverage(weighted) == coverage(uniform)

        proptest.forall(prop)

    def test_weighted_plan_is_lpt_ordered(self):
        def prop(rng, seed):
            n_weeks = rng.randint(2, 8)
            n_domains = rng.randint(10, 100)
            model = CostModel(
                domain_cost=_random_cost_vector(rng, n_domains),
                source="prop",
            )
            shards = plan_shards(
                n_weeks, n_domains, workers=rng.randint(2, 5), cost_model=model
            )
            estimates = [
                shard.week_count
                * sum(
                    model.domain_cost[d]
                    for d in range(
                        shard.domain_start,
                        shard.domain_start + shard.domain_count,
                    )
                )
                for shard in shards
            ]
            assert estimates == sorted(estimates, reverse=True)

        proptest.forall(prop)

    def test_uniform_cost_model_reproduces_uniform_plan_cells(self):
        # All-equal costs must cut exactly where the uniform planner
        # cuts (the weighted quantile formula degenerates to _cuts).
        for workers in (1, 2, 3, 5):
            uniform = plan_shards(6, 90, workers)
            weighted = plan_shards(
                6, 90, workers, cost_model=CostModel.uniform(90)
            )
            assert [
                (s.week_start, s.week_count, s.domain_start, s.domain_count)
                for s in uniform
            ] == sorted(
                (s.week_start, s.week_count, s.domain_start, s.domain_count)
                for s in weighted
            )

    def test_zero_cost_vector_falls_back_to_uniform_cuts(self):
        shards = plan_shards(
            4, 40, workers=4, cost_model=CostModel(domain_cost=(0,) * 40)
        )
        _assert_exact_partition(shards, 4, 40)
        assert len(shards) == 4

    def test_mismatched_model_width_is_a_config_error(self):
        with pytest.raises(ConfigError, match="cost model covers"):
            plan_shards(4, 40, workers=2, cost_model=CostModel.uniform(39))


class TestCostModelFromMetrics:
    def _document(self, shards, weeks=4, domains=40):
        return {
            "format": METRICS_FORMAT,
            "planner": {
                "grid": {"weeks": weeks, "domains": domains},
                "shards": shards,
            },
        }

    def _row(self, **overrides):
        row = {
            "index": 0,
            "week_start": 0,
            "week_count": 4,
            "domain_start": 0,
            "domain_count": 40,
            "cells": 160,
            "pages": 100,
            "failures": 10,
            "cache_misses": 5,
            "scripts": 50,
            "attempts": 1,
            "cost_units": shard_cost_units(160, 100, 10, 5, 50),
        }
        row.update(overrides)
        return row

    def test_profile_round_trip_builds_densities(self):
        cheap = self._row(
            index=0, domain_start=0, domain_count=20, cells=80,
            pages=0, failures=0, cache_misses=0, scripts=0,
            cost_units=shard_cost_units(80),
        )
        heavy = self._row(
            index=1, domain_start=20, domain_count=20, cells=80,
            pages=80, failures=0, cache_misses=80, scripts=160,
            cost_units=shard_cost_units(80, 80, 0, 80, 160),
        )
        model = CostModel.from_metrics_document(
            self._document([cheap, heavy]), 40
        )
        assert len(model.domain_cost) == 40
        # Heavy columns must cost strictly more than dead ones.
        assert min(model.domain_cost[20:]) > max(model.domain_cost[:20])
        assert model.domain_cost[0] == COST_PER_CELL * CostModel.SCALE
        per_cell = (
            COST_PER_CELL
            + COST_PER_PAGE
            + COST_PER_CACHE_MISS
            + 2 * 2  # two scripts per cell at COST_PER_SCRIPT each
        )
        assert model.domain_cost[20] == per_cell * CostModel.SCALE

    def test_domain_grid_mismatch_is_a_config_error(self):
        with pytest.raises(ConfigError, match="does not transfer"):
            CostModel.from_metrics_document(self._document([self._row()]), 41)

    def test_wrong_format_and_missing_planner_are_config_errors(self):
        with pytest.raises(ConfigError, match="format"):
            planner_profile({"format": METRICS_FORMAT - 1, "planner": {}})
        with pytest.raises(ConfigError, match="planner"):
            planner_profile({"format": METRICS_FORMAT})
        with pytest.raises(ConfigError):
            planner_profile(
                {"format": METRICS_FORMAT, "planner": {"grid": {}, "shards": [{}]}}
            )


def _run(config, weeks, plan_from=None, backend="serial", workers=2,
         fault_plan=None, checkpoint_dir=None, resume=False):
    crawler = Crawler(
        WebEcosystem(config),
        mode="manifest",
        apply_filter=False,
        execution=ExecutionConfig(
            backend=backend, workers=workers, plan_from=plan_from
        ),
        fault_plan=fault_plan,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    report = crawler.run(weeks=weeks)
    return report, store_to_bytes(crawler.store)


class TestPlanFromEndToEnd:
    """run → metrics → replan → rerun: the same dataset, better balance."""

    def test_adaptive_rerun_is_byte_identical(self, tmp_path):
        def prop(rng, seed):
            config = ScenarioConfig(population=rng.choice((30, 40)), seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            report1, store1 = _run(config, weeks)
            metrics_path = tmp_path / f"metrics-{seed}.json"
            metrics_path.write_text(report1.metrics.canonical_json())

            backend = rng.choice(("serial", "thread", "async"))
            report2, store2 = _run(
                config, weeks, plan_from=str(metrics_path), backend=backend
            )
            assert store2 == store1, f"weighted plan on {backend} diverged"
            doc1 = json.loads(report1.metrics.canonical_json())
            doc2 = json.loads(report2.metrics.canonical_json())
            # Dataset tier: identical across plans.  The planner section
            # legitimately differs (it records the plan that ran).
            assert doc1["dataset"] == doc2["dataset"]
            assert doc2["planner"]["grid"] == doc1["planner"]["grid"]
            assert len(doc2["planner"]["shards"]) == len(
                doc1["planner"]["shards"]
            )

        proptest.forall(prop)

    def test_adaptive_rerun_under_faults_is_deterministic(self, tmp_path):
        config = ScenarioConfig(population=40, seed=23)
        weeks = config.calendar.weeks[:3]
        report1, _ = _run(config, weeks)
        metrics_path = tmp_path / "faulty.json"
        metrics_path.write_text(report1.metrics.canonical_json())
        plan = FaultPlan(seed=23, crash_rate=0.4)

        runs = [
            _run(
                config,
                weeks,
                plan_from=str(metrics_path),
                backend=backend,
                fault_plan=plan,
            )
            for backend in ("serial", "async", "thread")
        ]
        baseline_report, baseline_store = runs[0]
        for report, store in runs[1:]:
            assert store == baseline_store
            assert report.dropped_shards == baseline_report.dropped_shards
            assert report.shard_retries == baseline_report.shard_retries
            assert report.backoff_seconds == baseline_report.backoff_seconds

    def test_manifest_records_plan_provenance_and_resume_adopts_it(
        self, tmp_path
    ):
        import hashlib

        from repro.runtime import RunLedger

        config = ScenarioConfig(population=30, seed=11)
        weeks = config.calendar.weeks[:3]
        report1, baseline = _run(config, weeks)
        metrics_path = tmp_path / "profile.json"
        metrics_path.write_text(report1.metrics.canonical_json())
        digest = hashlib.sha256(metrics_path.read_bytes()).hexdigest()

        root = tmp_path / "ledger"
        _run(
            config,
            weeks,
            plan_from=str(metrics_path),
            backend="async",
            checkpoint_dir=str(root),
        )
        manifest = RunLedger(str(root))._load_manifest()
        assert manifest.plan_source == "weighted"
        assert manifest.plan_from_digest == digest

        # Kill: drop journal entries.  Resume *without* plan_from — the
        # manifest's weighted plan must be adopted unchanged.
        entries = sorted((root / "journal").glob("shard-*.wal"))
        assert entries
        entries[0].unlink()
        report3, resumed = _run(
            config,
            weeks,
            backend="serial",
            workers=1,
            checkpoint_dir=str(root),
            resume=True,
        )
        assert resumed == baseline
        assert report3.shards_replayed >= 1

    def test_unreadable_and_malformed_plan_sources_fail_typed(self, tmp_path):
        config = ScenarioConfig(population=20, seed=5)
        weeks = config.calendar.weeks[:2]
        with pytest.raises(ConfigError, match="cannot read"):
            _run(config, weeks, plan_from=str(tmp_path / "missing.json"))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ConfigError, match="not a JSON document"):
            _run(config, weeks, plan_from=str(garbled))
        # A valid document recorded over a different population.
        other = ScenarioConfig(population=60, seed=5)
        other_report, _ = _run(other, other.calendar.weeks[:2])
        foreign = tmp_path / "foreign.json"
        foreign.write_text(other_report.metrics.canonical_json())
        with pytest.raises(ConfigError, match="does not transfer"):
            _run(config, weeks, plan_from=str(foreign))
