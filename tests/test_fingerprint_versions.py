"""Version-extraction heuristics."""

import pytest

from repro.fingerprint.versions import (
    extract_version,
    version_from_filename,
    version_from_path_segment,
    version_from_query,
)


class TestFilename:
    def test_dash_version(self):
        assert version_from_filename("jquery-1.12.4.min.js", "jquery") == "1.12.4"

    def test_dot_token(self):
        assert version_from_filename("js.cookie-2.1.4.min.js", "js.cookie") == "2.1.4"

    def test_no_version(self):
        assert version_from_filename("jquery.min.js", "jquery") is None

    def test_v_prefix(self):
        assert version_from_filename("modernizr-v2.6.2.js", "modernizr") == "2.6.2"

    def test_four_component(self):
        assert version_from_filename("prototype-1.6.0.1.min.js", "prototype") == "1.6.0.1"


class TestQuery:
    def test_ver(self):
        assert version_from_query("ver=1.12.4") == "1.12.4"

    def test_version_param(self):
        assert version_from_query("a=1&version=3.5.1") == "3.5.1"

    def test_absent(self):
        assert version_from_query("cache=123abc") is None
        assert version_from_query("") is None


class TestPathSegment:
    def test_dotted_segment(self):
        assert version_from_path_segment("/ajax/libs/jquery/1.12.4/jquery.min.js") == "1.12.4"

    def test_at_version(self):
        assert version_from_path_segment("/npm/js-cookie@2.1.4/dist/js.cookie.min.js") == "2.1.4"

    def test_major_only_v(self):
        assert version_from_path_segment("/v3/polyfill.min.js") == "3"

    def test_latest_not_a_version(self):
        assert version_from_path_segment("/latest/jquery.min.js") is None


class TestPriority:
    def test_filename_beats_everything(self):
        version = extract_version(
            "/1.0.0/jquery-2.0.0.min.js", "ver=3.0.0", "jquery-2.0.0.min.js", "jquery"
        )
        assert version == "2.0.0"

    def test_query_beats_path(self):
        # The c0.wp.com shape: platform version in the path, library
        # version in the query.
        version = extract_version(
            "/c/5.8.1/wp-includes/js/jquery/jquery.min.js",
            "ver=3.5.1",
            "jquery.min.js",
            "jquery",
        )
        assert version == "3.5.1"

    def test_path_as_fallback(self):
        version = extract_version(
            "/bootstrap/3.3.7/js/bootstrap.min.js", "", "bootstrap.min.js", "bootstrap"
        )
        assert version == "3.3.7"

    def test_nothing(self):
        assert extract_version("/assets/js/app.js", "", "app.js", "jquery") is None
