"""The site scanner (Section 9 recommendations as code)."""

import datetime

import pytest

from repro.advisor import Finding, ScanReport, Severity, SiteScanner


@pytest.fixture(scope="module")
def scanner():
    return SiteScanner(as_of=datetime.date(2022, 2, 1))


def _scan(scanner, html):
    return scanner.scan_html(html, "https://victim.example/")


class TestVulnerableLibraryRule:
    def test_known_vulnerable_version(self, scanner):
        report = _scan(scanner, '<script src="/js/jquery-1.12.4.min.js"></script>')
        rules = report.by_rule()
        hits = rules["vulnerable-library"]
        ids = {a for f in hits for a in f.advisories}
        assert "CVE-2020-11023" in ids and "CVE-2020-11022" in ids

    def test_undisclosed_flag_for_understated(self, scanner):
        # jQuery 2.0.0 is safe per CVE-2014-6071's stated range but truly
        # vulnerable per the paper's TVV (1.5.0 - 2.2.4).
        report = _scan(scanner, '<script src="/js/jquery-2.0.0.min.js"></script>')
        undisclosed = [f for f in report.findings if f.undisclosed]
        assert any("CVE-2014-6071" in f.advisories for f in undisclosed)

    def test_exploitability_via_poclab(self, scanner):
        report = _scan(scanner, '<script src="/js/jquery-1.8.3.min.js"></script>')
        exploitable = [f for f in report.findings if f.exploitable]
        assert any("CVE-2020-7656" in f.advisories for f in exploitable)

    def test_remediation_is_an_upgrade(self, scanner):
        from repro.semver import Version

        report = _scan(scanner, '<script src="/js/jquery-1.8.3.min.js"></script>')
        for finding in report.by_rule().get("vulnerable-library", []):
            target = finding.remediation.split()[2]
            assert Version(target) > Version("1.8.3"), finding.remediation

    def test_latest_version_is_clean(self, scanner):
        report = _scan(scanner, '<script src="/js/jquery-3.6.0.min.js"></script>')
        assert "vulnerable-library" not in report.by_rule()

    def test_disclosure_cutoff(self):
        early = SiteScanner(as_of=datetime.date(2015, 1, 1))
        report = early.scan_html(
            '<script src="/js/jquery-1.12.4.min.js"></script>',
            "https://x.example/",
        )
        ids = {a for f in report.findings for a in f.advisories}
        assert "CVE-2020-11022" not in ids  # not disclosed yet in 2015


class TestOtherRules:
    def test_discontinued_library(self, scanner):
        report = _scan(
            scanner, '<script src="/js/jquery.cookie-1.4.1.min.js"></script>'
        )
        findings = report.by_rule()["discontinued-library"]
        assert "js-cookie" in findings[0].remediation

    def test_unversioned_library(self, scanner):
        report = _scan(scanner, '<script src="/assets/js/modernizr.min.js"></script>')
        assert "unversioned-library" in report.by_rule()

    def test_missing_sri(self, scanner):
        html = '<script src="https://cdnjs.cloudflare.com/ajax/libs/jquery/3.6.0/jquery.min.js"></script>'
        report = _scan(scanner, html)
        assert "missing-sri" in report.by_rule()

    def test_sri_present_no_finding(self, scanner):
        html = (
            '<script src="https://cdnjs.cloudflare.com/ajax/libs/jquery/3.6.0/jquery.min.js"'
            ' integrity="sha384-ok" crossorigin="anonymous"></script>'
        )
        report = _scan(scanner, html)
        assert "missing-sri" not in report.by_rule()

    def test_use_credentials(self, scanner):
        html = (
            '<script src="https://cdnjs.cloudflare.com/ajax/libs/jquery/3.6.0/jquery.min.js"'
            ' integrity="sha384-ok" crossorigin="use-credentials"></script>'
        )
        report = _scan(scanner, html)
        assert "crossorigin-credentials" in report.by_rule()

    def test_untrusted_host(self, scanner):
        html = '<script src="https://someone.github.io/lib/x.js"></script>'
        report = _scan(scanner, html)
        assert "untrusted-host" in report.by_rule()

    def test_flash_rules(self, scanner):
        html = '<embed src="/m.swf" width="1" height="1" allowscriptaccess="always">'
        report = _scan(scanner, html)
        rules = report.by_rule()
        assert "flash-eol" in rules
        assert "flash-script-access" in rules
        assert rules["flash-eol"][0].severity is Severity.HIGH

    def test_outdated_wordpress(self, scanner):
        html = '<meta name="generator" content="WordPress 5.0.3">'
        report = _scan(scanner, html)
        finding = report.by_rule()["outdated-platform"][0]
        assert finding.severity is Severity.HIGH  # known core CVEs apply
        assert finding.advisories

    def test_current_wordpress_clean(self, scanner):
        html = '<meta name="generator" content="WordPress 5.9">'
        report = _scan(scanner, html)
        assert "outdated-platform" not in report.by_rule()

    def test_clean_page(self, scanner):
        report = _scan(scanner, "<html><body>static page</body></html>")
        assert len(report) == 0
        assert report.worst is Severity.INFO


class TestReportType:
    def test_sorted_most_severe_first(self, scanner):
        html = (
            '<script src="/js/jquery-1.12.4.min.js"></script>'
            '<script src="/assets/js/modernizr.min.js"></script>'
        )
        report = _scan(scanner, html)
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, reverse=True)

    def test_summary_line(self, scanner):
        report = _scan(scanner, '<script src="/js/jquery-1.12.4.min.js"></script>')
        line = report.summary_line()
        assert "victim.example" in line and "critical" in line

    def test_counts(self, scanner):
        report = _scan(scanner, '<script src="/js/jquery-1.12.4.min.js"></script>')
        counts = report.counts()
        assert sum(counts.values()) == len(report)


class TestScanUrl:
    def test_over_virtual_network(self, scanner, ecosystem):
        from repro.webgen.domains import Reachability

        domain = next(
            d
            for d in ecosystem.population
            if d.reachability is Reachability.STABLE
        )
        ecosystem.set_week(0)
        report = scanner.scan_url(ecosystem.network, f"https://{domain.name}/")
        assert report.page_url.endswith("/")

    def test_unreachable(self, scanner, ecosystem):
        report = scanner.scan_url(ecosystem.network, "https://nope.invalid/")
        assert report.findings[0].rule == "unreachable"
