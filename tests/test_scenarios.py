"""Scenario packs: registry semantics, dataset identity, pack effects.

The load-bearing guarantees:

* the ``baseline`` pack (and an unset pack) is byte-identical to the
  pre-pack seed dataset — pinned by a golden store digest;
* pack selection is *dataset identity*: applying a non-baseline pack
  changes the scenario digest (so ledgers/queues refuse mismatched
  resumes), while baseline-with-defaults equals unset;
* the ``bundled-deps`` vendored channel keeps full/manifest mode
  parity byte-exact;
* ``cve-range-drift`` perturbs the advisory database deterministically
  and flows into store bytes via ingest-time matching.
"""

import dataclasses
import hashlib

import pytest

from repro import ScenarioConfig, Study
from repro.config import BundlingConfig, CveDriftConfig, PackSelection
from repro.crawler.persistence import store_to_bytes
from repro.errors import AnalysisError, ConfigError
from repro.runtime.faults import FaultPlan
from repro.runtime.ledger import scenario_digest
from repro.scenarios import (
    PackParam,
    apply_pack,
    available_packs,
    get_pack,
    pack_digest,
    register_pack,
)

#: Pre-pack seed dataset digest for (population=120, seed=9, weeks=8),
#: recorded before the scenario-pack machinery existed.  The baseline
#: pack must keep producing these exact bytes.
_GOLDEN_120_9_8 = (
    "cb344a7e44a97bb2c573e076c5689bc4ef6708b9ce8092b9bb338d65e84594cd"
)


def _store_digest(config: ScenarioConfig, weeks: int, mode="manifest") -> str:
    study = Study(config, mode=mode)
    study.run(weeks=config.calendar.weeks[:weeks])
    return hashlib.sha256(store_to_bytes(study.store)).hexdigest()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestPackRegistry:
    def test_builtin_packs_are_registered(self):
        names = available_packs()
        for expected in (
            "baseline",
            "bundled-deps",
            "counterfactual",
            "cve-range-drift",
        ):
            assert expected in names

    def test_unknown_pack_lists_vocabulary(self):
        with pytest.raises(ConfigError) as excinfo:
            get_pack("no-such-pack")
        message = str(excinfo.value)
        assert "unknown scenario pack 'no-such-pack'" in message
        assert "baseline" in message and "bundled-deps" in message

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ConfigError, match="already registered"):

            @register_pack("baseline")
            def clash(config, params):  # pragma: no cover
                return config

    def test_undeclared_parameter_names_the_declared_set(self):
        with pytest.raises(ConfigError) as excinfo:
            apply_pack(ScenarioConfig(population=10), "bundled-deps", {"nope": 1})
        message = str(excinfo.value)
        assert "no parameter 'nope'" in message
        assert "share" in message

    def test_choice_parameters_are_enforced(self):
        with pytest.raises(ConfigError, match="is not one of"):
            apply_pack(
                ScenarioConfig(population=10),
                "counterfactual",
                {"intervention": "do-magic"},
            )

    def test_type_coercion_from_grid_strings(self):
        config = apply_pack(
            ScenarioConfig(population=10), "bundled-deps", {"share": "0.4"}
        )
        assert config.bundling.share == pytest.approx(0.4)
        assert config.bundling.enabled

    def test_bool_param_parse(self):
        param = PackParam("flag", bool, False)
        assert param.parse("yes") is True
        assert param.parse("0") is False
        with pytest.raises(ConfigError, match="expected a boolean"):
            param.parse("maybe")

    def test_pack_digest_is_stable_and_param_sensitive(self):
        base = pack_digest("bundled-deps")
        assert base == pack_digest("bundled-deps")
        assert base != pack_digest("bundled-deps", {"share": 0.9})
        assert base != pack_digest("cve-range-drift")


# ----------------------------------------------------------------------
# Dataset identity
# ----------------------------------------------------------------------
class TestPackIdentity:
    def test_baseline_selection_is_the_default_selection(self):
        config = ScenarioConfig(population=10)
        assert apply_pack(config, "baseline").pack == PackSelection()

    def test_unset_and_baseline_share_scenario_digest(self):
        config = ScenarioConfig(population=50, seed=3)
        assert scenario_digest(config) == scenario_digest(
            apply_pack(config, "baseline")
        )

    def test_non_baseline_pack_changes_scenario_digest(self):
        config = ScenarioConfig(population=50, seed=3)
        for name, params in (
            ("bundled-deps", {"share": 0.3}),
            ("cve-range-drift", {"rate": 0.4}),
            ("counterfactual", {}),
        ):
            assert scenario_digest(config) != scenario_digest(
                apply_pack(config, name, params)
            ), name

    def test_param_values_change_scenario_digest(self):
        config = ScenarioConfig(population=50, seed=3)
        a = apply_pack(config, "bundled-deps", {"share": 0.2})
        b = apply_pack(config, "bundled-deps", {"share": 0.3})
        assert scenario_digest(a) != scenario_digest(b)


class TestBaselineGolden:
    def test_baseline_store_bytes_match_pre_pack_seed(self):
        config = ScenarioConfig(population=120, seed=9)
        assert _store_digest(config, 8) == _GOLDEN_120_9_8

    def test_explicit_baseline_pack_matches_golden_too(self):
        config = apply_pack(
            ScenarioConfig(population=120, seed=9), "baseline"
        )
        assert _store_digest(config, 8) == _GOLDEN_120_9_8


# ----------------------------------------------------------------------
# bundled-deps: the vendored-inclusion channel
# ----------------------------------------------------------------------
class TestBundledDeps:
    CONFIG = apply_pack(
        ScenarioConfig(population=60, seed=11), "bundled-deps", {"share": 0.5}
    )

    def test_bundling_changes_store_bytes(self):
        baseline = ScenarioConfig(population=60, seed=11)
        assert _store_digest(self.CONFIG, 4) != _store_digest(baseline, 4)

    def test_full_and_manifest_modes_agree(self):
        assert _store_digest(self.CONFIG, 4, mode="full") == _store_digest(
            self.CONFIG, 4, mode="manifest"
        )

    def test_vendored_sampling_is_deterministic(self):
        import numpy as np

        from repro.semver import builtin_catalogs
        from repro.webgen.bundles import sample_vendored

        catalogs = builtin_catalogs()
        start = self.CONFIG.calendar.week_at(0).date
        bundling = BundlingConfig(share=1.0, max_ingredients=3)
        draws = [
            sample_vendored(
                np.random.default_rng([11, 4, 0xB17D]),
                bundling,
                catalogs,
                start,
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]
        assert draws[0], "share=1.0 must vendor at least one ingredient"
        for inclusion in draws[0]:
            if inclusion.detected and not inclusion.version_visible:
                from repro.webgen.bundles import BUNDLE_BANNERS

                assert BUNDLE_BANNERS[inclusion.library][1] is not None


# ----------------------------------------------------------------------
# cve-range-drift: seeded advisory mislabeling
# ----------------------------------------------------------------------
class TestCveDrift:
    def test_zero_rate_is_identity(self):
        from repro.vulndb import default_database
        from repro.vulndb.drift import drifted_database

        database = default_database()
        assert (
            drifted_database(database, CveDriftConfig(rate=0.0)) is database
        )

    def test_drift_is_deterministic_and_marked(self):
        from repro.vulndb import default_database
        from repro.vulndb.drift import drifted_database

        drift = CveDriftConfig(rate=0.5, seed=3)
        first = drifted_database(default_database(), drift)
        second = drifted_database(default_database(), drift)
        changed = [
            advisory for advisory in first if "[drifted:" in advisory.notes
        ]
        assert changed, "rate=0.5 must drift some advisories"
        assert [a.identifier for a in changed] == [
            a.identifier for a in second if "[drifted:" in a.notes
        ]
        for advisory in changed:
            assert advisory.true_range is not None

    def test_drift_seed_changes_the_selection(self):
        from repro.vulndb import default_database
        from repro.vulndb.drift import drift_summary, drifted_database

        base = default_database()
        summary_a = drift_summary(
            base, drifted_database(base, CveDriftConfig(rate=0.5, seed=1))
        )
        summary_b = drift_summary(
            base, drifted_database(base, CveDriftConfig(rate=0.5, seed=2))
        )
        assert summary_a != summary_b

    def test_drift_pack_changes_store_bytes(self):
        baseline = ScenarioConfig(population=60, seed=11)
        drifted = apply_pack(
            baseline, "cve-range-drift", {"rate": 0.6, "seed": 5}
        )
        assert _store_digest(drifted, 4) != _store_digest(baseline, 4)


# ----------------------------------------------------------------------
# Satellites: mixing-forms error, fault vocabulary, analysis registry
# ----------------------------------------------------------------------
class TestSatellites:
    def test_mixing_options_and_legacy_kwargs_names_both(self):
        from repro.options import ExecutionOptions, RunOptions

        options = RunOptions(execution=ExecutionOptions(workers=2))
        with pytest.raises(ConfigError) as excinfo:
            Study(
                ScenarioConfig(population=10),
                options=options,
                backend="thread",
            )
        message = str(excinfo.value)
        assert "not both" in message
        assert "execution.workers" in message
        assert "backend" in message

    def test_fault_plan_errors_list_sorted_kinds(self):
        with pytest.raises(ConfigError) as excinfo:
            FaultPlan.from_spec("wat=1")
        message = str(excinfo.value)
        assert "known fault kinds (sorted)" in message
        kinds = message.rsplit(":", 1)[1].strip().split(", ")
        assert kinds == sorted(kinds)
        assert "crash" in kinds and "seed" in kinds

    def test_analysis_registry_runs_by_name(self):
        from repro.analysis.api import available_analyses, get_analysis

        names = available_analyses()
        assert len(names) >= 17
        assert list(names) == sorted(names)
        with pytest.raises(AnalysisError) as excinfo:
            get_analysis("nope")
        assert "registered analyses" in str(excinfo.value)

    def test_run_registered_is_deterministic_json(self):
        import json

        config = ScenarioConfig(population=40, seed=2)
        study = Study(config)
        study.run(weeks=config.calendar.weeks[:3])
        first = json.dumps(
            study.run_registered(("prevalence", "collection-series")),
            sort_keys=True,
        )
        second = json.dumps(
            study.run_registered(("prevalence", "collection-series")),
            sort_keys=True,
        )
        assert first == second

    def test_report_carries_the_analysis_index(self):
        from repro.reporting import StudyReport

        config = apply_pack(
            ScenarioConfig(population=40, seed=2),
            "bundled-deps",
            {"share": 0.4},
        )
        study = Study(config)
        study.run(weeks=config.calendar.weeks[:3])
        rendered = StudyReport(study).render()
        assert "Registered analyses" in rendered
        assert "bundled-deps(" in rendered
