"""Counterfactual interventions (Section 9 suggestions)."""

import pytest

from repro import ScenarioConfig
from repro.analysis.counterfactuals import (
    BUILTIN_INTERVENTIONS,
    _run,
    evaluate,
    no_auto_update,
    responsive_web,
    universal_auto_update,
)

_CONFIG = ScenarioConfig(population=400, seed=321)


@pytest.fixture(scope="module")
def baseline():
    return _run(_CONFIG)


class TestTransforms:
    def test_universal_auto_update_config(self):
        transformed = universal_auto_update(_CONFIG)
        assert transformed.platform.auto_update_share == 1.0
        assert transformed.platform.bundled_jquery_share == 1.0
        assert transformed.population == _CONFIG.population

    def test_no_auto_update_config(self):
        assert no_auto_update(_CONFIG).platform.auto_update_share == 0.0

    def test_responsive_web_config(self):
        transformed = responsive_web(_CONFIG)
        assert transformed.behavior.frozen == 0.0

    def test_baseline_untouched(self):
        universal_auto_update(_CONFIG)
        assert _CONFIG.platform.auto_update_share < 1.0  # frozen dataclass


class TestOutcomes:
    def test_universal_auto_update_helps_after_patches_exist(self, baseline):
        result = evaluate("universal-auto-update", _CONFIG, baseline=baseline)
        # Auto-updating cannot help before a patched bundle ships (all
        # of WordPress rode jQuery 1.12.4 until Dec 2020); in the
        # post-wave era it lowers prevalence and it always produces more
        # update events.
        assert (
            result.intervention.vulnerable_share_late
            < result.baseline.vulnerable_share_late
        )
        assert result.intervention.updated_sites > result.baseline.updated_sites

    def test_no_auto_update_hurts(self, baseline):
        result = evaluate("no-auto-update", _CONFIG, baseline=baseline)
        assert (
            result.intervention.vulnerable_share
            >= result.baseline.vulnerable_share - 0.005
        )
        # Fewer sites ever update.
        assert result.intervention.updated_sites <= result.baseline.updated_sites

    def test_responsive_web_updates_more(self, baseline):
        result = evaluate("responsive-web", _CONFIG, baseline=baseline)
        assert result.intervention.updated_sites > result.baseline.updated_sites
        assert result.intervention.censored_sites < result.baseline.censored_sites

    def test_summary_text(self, baseline):
        result = evaluate("no-auto-update", _CONFIG, baseline=baseline)
        assert "vulnerable share" in result.summary()

    def test_custom_transform(self, baseline):
        result = evaluate(
            "identity", _CONFIG, transform=lambda c: c, baseline=baseline
        )
        # Same config, same seed: identical outcomes.
        assert result.prevalence_delta == pytest.approx(0.0)
        assert result.delay_delta_days == pytest.approx(0.0)

    def test_unknown_builtin(self, baseline):
        with pytest.raises(KeyError):
            evaluate("warp-speed", _CONFIG, baseline=baseline)
