"""Version parsing and ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VersionError
from repro.semver import Version, parse_version


class TestParsing:
    def test_three_component(self):
        v = Version("1.12.4")
        assert v.release == (1, 12, 4)
        assert (v.major, v.minor, v.patch) == (1, 12, 4)

    def test_two_component(self):
        v = Version("2.2")
        assert v.release == (2, 2)
        assert v.patch == 0

    def test_single_component(self):
        assert Version("3").major == 3

    def test_four_component_prototype_style(self):
        v = Version("1.6.0.1")
        assert v.release == (1, 6, 0, 1)

    def test_v_prefix(self):
        assert Version("v3.5.1") == Version("3.5.1")

    def test_prerelease(self):
        v = Version("3.0.0-rc1")
        assert v.is_prerelease
        assert v.prerelease == "rc1"

    def test_whitespace_tolerated(self):
        assert Version("  1.2.3 ") == Version("1.2.3")

    @pytest.mark.parametrize("bad", ["", "abc", "..", "-1.2", "1..2", None, 1.2])
    def test_rejects_garbage(self, bad):
        with pytest.raises(VersionError):
            Version(bad)

    def test_parse_version_idempotent(self):
        v = Version("1.2.3")
        assert parse_version(v) is v


class TestOrdering:
    def test_basic_order(self):
        assert Version("1.12.4") < Version("3.5.0")

    def test_minor_vs_patch(self):
        assert Version("1.9.1") > Version("1.9.0")
        assert Version("1.10.0") > Version("1.9.1")

    def test_numeric_not_lexicographic(self):
        assert Version("1.12.0") > Version("1.9.1")

    def test_padding_equality(self):
        assert Version("1.2") == Version("1.2.0")
        assert hash(Version("1.2")) == hash(Version("1.2.0"))

    def test_four_components(self):
        assert Version("1.6.0.1") > Version("1.6.0")
        assert Version("1.6.0.1") < Version("1.6.1")

    def test_prerelease_sorts_before_release(self):
        assert Version("3.0.0-rc1") < Version("3.0.0")
        assert Version("3.0.0-beta") < Version("3.0.0-rc1")

    def test_total_ordering_helpers(self):
        assert Version("1.0") <= Version("1.0.0")
        assert Version("2.0") >= Version("1.9.9")

    def test_not_equal_other_types(self):
        assert Version("1.0") != "1.0"


class TestDerivation:
    def test_bump_patch(self):
        assert Version("1.7.3").bump_patch() == Version("1.7.4")
        assert Version("2.2").bump_patch() == Version("2.2.1")

    def test_truncated(self):
        assert Version("1.6.0.1").truncated(2) == Version("1.6")

    def test_truncated_rejects_zero(self):
        with pytest.raises(VersionError):
            Version("1.2.3").truncated(0)


@given(
    st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=4),
    st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=4),
)
def test_ordering_matches_padded_tuples(a, b):
    """Property: Version order == zero-padded tuple order."""
    va = Version(".".join(map(str, a)))
    vb = Version(".".join(map(str, b)))
    width = max(len(a), len(b))
    ta = tuple(a) + (0,) * (width - len(a))
    tb = tuple(b) + (0,) * (width - len(b))
    assert (va < vb) == (ta < tb)
    assert (va == vb) == (ta == tb)


@given(st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=4))
def test_roundtrip_text(parts):
    """Property: parsing the rendered text yields an equal version."""
    text = ".".join(map(str, parts))
    assert Version(Version(text).text) == Version(text)
