"""Sweep engine: grid expansion, orchestration, fold convergence.

The tentpole contract: a sweep grid expands to one full scenario per
point (each with its own scenario digest), rides the orchestrator's
durable queue, and folds into a canonical ``fleet-sweep.json`` that is
byte-identical across independent runs and across a hard mid-sweep
kill followed by a resume.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigError
from repro.orchestrator import FleetPlan, Orchestrator
from repro.sweep import (
    SWEEP_DOCUMENT_NAME,
    SweepPoint,
    SweepSpec,
    fold_documents,
    render_sweep_report,
)

_POPULATION = 20
_SEED = 6
_WEEKS = 2
_GRID = "baseline;bundled-deps:share=0.5"


# ----------------------------------------------------------------------
# Grid parsing and expansion
# ----------------------------------------------------------------------
class TestGridParsing:
    def test_cartesian_product_per_segment(self):
        spec = SweepSpec.parse(
            "baseline;bundled-deps:share=0.1|0.3,detection_rate=0.5|0.9"
        )
        labels = [point.describe() for point in spec.points]
        assert labels == [
            "baseline",
            "bundled-deps(detection_rate=0.5,share=0.1)",
            "bundled-deps(detection_rate=0.9,share=0.1)",
            "bundled-deps(detection_rate=0.5,share=0.3)",
            "bundled-deps(detection_rate=0.9,share=0.3)",
        ]

    def test_unknown_pack_is_refused_with_vocabulary(self):
        with pytest.raises(ConfigError, match="known packs"):
            SweepSpec.parse("baseline;no-such-pack")

    def test_undeclared_parameter_is_refused(self):
        with pytest.raises(ConfigError, match="no parameter"):
            SweepSpec.parse("baseline:share=0.5")

    def test_bad_value_is_refused_eagerly(self):
        with pytest.raises(ConfigError, match="expected float"):
            SweepSpec.parse("bundled-deps:share=lots")

    def test_malformed_segments_are_refused(self):
        with pytest.raises(ConfigError, match="empty pack segment"):
            SweepSpec.parse("baseline;;bundled-deps")
        with pytest.raises(ConfigError, match="bad sweep assignment"):
            SweepSpec.parse("bundled-deps:share")
        with pytest.raises(ConfigError, match="assigned twice"):
            SweepSpec.parse("bundled-deps:share=0.1,share=0.2")

    def test_duplicate_points_are_refused(self):
        with pytest.raises(ConfigError, match="duplicate sweep point"):
            SweepSpec.parse("baseline;baseline")

    def test_point_round_trip_and_param_order(self):
        point = SweepPoint("bundled-deps", (("a", "1"), ("b", "2")))
        assert SweepPoint.from_dict(point.to_dict()) == point
        with pytest.raises(ConfigError, match="sorted"):
            SweepPoint("bundled-deps", (("b", "2"), ("a", "1")))

    def test_each_point_is_a_distinct_scenario(self):
        spec = SweepSpec.parse("baseline;bundled-deps:share=0.2|0.4")
        digests = spec.scenario_digests(_POPULATION, _SEED)
        assert len(set(digests)) == len(digests) == 3


# ----------------------------------------------------------------------
# Plan layout
# ----------------------------------------------------------------------
class TestSweepPlan:
    def _plan(self):
        return FleetPlan.build_sweep(
            SweepSpec.parse(_GRID).points,
            population=_POPULATION,
            seed=_SEED,
            weeks=_WEEKS,
        )

    def test_job_layout(self):
        plan = self._plan()
        assert [job.job_id for job in plan.jobs] == [
            "sweep-crawl-000",
            "sweep-analyses-000",
            "sweep-crawl-001",
            "sweep-analyses-001",
            "sweep-fold-000",
        ]
        fold = plan.job("sweep-fold-000")
        assert fold.hard_deps == ()
        assert fold.soft_deps == ("sweep-analyses-000", "sweep-analyses-001")
        # Sweep crawls share nothing: no cross-point soft deps.
        assert plan.job("sweep-crawl-001").soft_deps == ()

    def test_fixed_week_window_per_point(self):
        plan = self._plan()
        assert plan.week_count(0) == plan.week_count(1) == _WEEKS

    def test_plan_round_trip_preserves_digest(self):
        plan = self._plan()
        clone = FleetPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.digest() == plan.digest()
        assert clone.sweep_points == plan.sweep_points

    def test_grid_is_plan_identity(self):
        other = FleetPlan.build_sweep(
            SweepSpec.parse("baseline;bundled-deps:share=0.6").points,
            population=_POPULATION,
            seed=_SEED,
            weeks=_WEEKS,
        )
        assert other.digest() != self._plan().digest()

    def test_beat_plan_manifest_is_unchanged_by_the_sweep_schema(self):
        beat = FleetPlan.build(
            population=_POPULATION, seed=_SEED, ticks=2, weeks_per_tick=2
        )
        assert "sweep_points" not in beat.to_dict()
        assert not beat.is_sweep

    def test_point_count_must_match_ticks(self):
        with pytest.raises(ConfigError, match="one tick per grid point"):
            FleetPlan(
                population=_POPULATION,
                seed=_SEED,
                ticks=3,
                weeks_per_tick=2,
                sweep_points=(SweepPoint("baseline"),),
            )


# ----------------------------------------------------------------------
# Fold logic (pure)
# ----------------------------------------------------------------------
class TestFold:
    def test_missing_points_are_recorded_not_fatal(self):
        points = SweepSpec.parse(_GRID).points
        document = {
            "analyses": {
                "collection-series": {"dates": ["d"], "collected": [4]},
                "prevalence": {"average_share": {"cve": 0.1, "tvv": 0.2}},
                "vulnerability-cdf": {"mean": {"cve": 1.5, "tvv": 2.0}},
            }
        }
        folded = fold_documents(
            points,
            [document, None],
            population=_POPULATION,
            seed=_SEED,
            weeks=_WEEKS,
        )
        assert folded["missing"] == ["bundled-deps(share=0.5)"]
        assert folded["comparison"]["vulnerable-share-cve"]["baseline"] == 0.1
        assert (
            folded["comparison"]["vulnerable-share-cve"][
                "bundled-deps(share=0.5)"
            ]
            is None
        )
        rendered = render_sweep_report(folded)
        assert "missing" in rendered
        assert "baseline" in rendered


# ----------------------------------------------------------------------
# End-to-end: run, convergence, kill/resume
# ----------------------------------------------------------------------
def _run_sweep(root: Path) -> dict:
    plan = FleetPlan.build_sweep(
        SweepSpec.parse(_GRID).points,
        population=_POPULATION,
        seed=_SEED,
        weeks=_WEEKS,
    )
    records = Orchestrator(root, plan).run()
    assert all(record.state == "done" for record in records.values())
    return records


_SWEEP_KILL_SCRIPT = """
import os, sys

limit = int(sys.argv[1])
qdir = sys.argv[2]

import repro.orchestrator.queue as queue_mod

writes = 0
original = queue_mod.JobQueue._write_record

def aborting_write(self, record, allow_tear=True):
    global writes
    original(self, record, allow_tear)
    writes += 1
    if writes >= limit:
        os._exit(137)  # hard abort: no cleanup, no atexit, no flush

queue_mod.JobQueue._write_record = aborting_write

from repro.orchestrator import FleetPlan, Orchestrator
from repro.sweep import SweepSpec

plan = FleetPlan.build_sweep(
    SweepSpec.parse(%r).points,
    population=%d, seed=%d, weeks=%d,
)
Orchestrator(qdir, plan).run()
os._exit(0)  # only reached if the abort never fired
""" % (_GRID, _POPULATION, _SEED, _WEEKS)


def _kill_sweep(root: Path, limit: int) -> None:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_KILL_SCRIPT, str(limit), str(root)],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 137, proc.stderr


class TestSweepEndToEnd:
    @pytest.fixture(scope="class")
    def clean_sweep(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sweep-clean")
        _run_sweep(root)
        return root

    def test_folded_document_shape(self, clean_sweep):
        document = json.loads(
            (clean_sweep / SWEEP_DOCUMENT_NAME).read_text()
        )
        labels = [entry["point"] for entry in document["points"]]
        assert labels == ["baseline", "bundled-deps(share=0.5)"]
        digests = {entry["scenario_digest"] for entry in document["points"]}
        assert len(digests) == 2
        assert document["missing"] == []
        for metric in (
            "collected-per-week",
            "vulnerable-share-cve",
            "vulnerable-share-tvv",
            "mean-vulns-per-site-cve",
        ):
            assert set(document["comparison"][metric]) == set(labels)

    def test_per_point_analyses_carry_identity(self, clean_sweep):
        from repro.orchestrator import JobQueue

        queue = JobQueue(clean_sweep)
        path = queue.artifact_dir("sweep-analyses-001") / "analyses.json"
        document = json.loads(path.read_text())
        assert document["point"] == "bundled-deps(share=0.5)"
        assert document["pack"].startswith("bundled-deps(")
        assert "prevalence" in document["analyses"]

    def test_independent_sweeps_converge_bytewise(self, clean_sweep, tmp_path):
        again = tmp_path / "again"
        _run_sweep(again)
        assert (again / SWEEP_DOCUMENT_NAME).read_bytes() == (
            clean_sweep / SWEEP_DOCUMENT_NAME
        ).read_bytes()

    @pytest.mark.parametrize("limit", [3, 8])
    def test_killed_and_resumed_sweep_matches_bytes(
        self, clean_sweep, tmp_path, limit
    ):
        root = tmp_path / f"killed-{limit}"
        _kill_sweep(root, limit)
        _run_sweep(root)  # resume with the identical plan
        assert (root / SWEEP_DOCUMENT_NAME).read_bytes() == (
            clean_sweep / SWEEP_DOCUMENT_NAME
        ).read_bytes()

    def test_resume_with_a_different_grid_is_refused(self, clean_sweep):
        from repro.errors import QueueError

        other = FleetPlan.build_sweep(
            SweepSpec.parse("baseline;cve-range-drift:rate=0.4").points,
            population=_POPULATION,
            seed=_SEED,
            weeks=_WEEKS,
        )
        with pytest.raises(QueueError, match="digest"):
            Orchestrator(clean_sweep, other).run()
