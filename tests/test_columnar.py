"""The columnar observation store: symbols, views, binary persistence.

Covers the PR-6 surface:

* symbol interning (dense ids, pair packing, canonical order);
* the packed containers' mapping views against plain-dict semantics;
* the WordPress-trajectory fallback-normalization fix;
* ``observed_versions`` memoization and invalidation;
* binary format v2: roundtrip, canonical byte identity, the corruption
  matrix (truncation, bit flips, wrong format id), and the legacy JSON
  interchange path — including the pinned pre-refactor export digest.
"""

from __future__ import annotations

import hashlib
import json
import struct

import pytest

from repro import ScenarioConfig
from repro.crawler import Crawler, ObservationStore
from repro.crawler.persistence import (
    BINARY_FORMAT_VERSION,
    export_store_json,
    load_store,
    save_store,
    store_from_bytes,
    store_from_dict,
    store_to_bytes,
    store_to_dict,
)
from repro.crawler.symbols import SymbolTable
from repro.errors import StoreError
from repro.fingerprint.profile import LibraryDetection, PageProfile
from repro.vulndb import VersionMatcher, default_database
from repro.webgen import WebEcosystem
from repro.webgen.domains import Domain, Reachability


def _domain(rank: int) -> Domain:
    return Domain(
        rank=rank, name=f"site{rank}.example", reachability=Reachability.STABLE
    )


def _store(config=None) -> ObservationStore:
    config = config or ScenarioConfig(population=20, seed=5)
    return ObservationStore(config.calendar, VersionMatcher(default_database()))


def _crawled_store(population=60, seed=9, n_weeks=5):
    config = ScenarioConfig(population=population, seed=seed)
    ecosystem = WebEcosystem(config)
    crawler = Crawler(ecosystem, mode="manifest", apply_filter=False)
    crawler.crawl_block(
        config.calendar.weeks[:n_weeks], list(ecosystem.population)
    )
    return crawler.store, config


class TestSymbolTable:
    def test_intern_is_dense_and_stable(self):
        table = SymbolTable()
        a = table.library.intern("jquery")
        b = table.library.intern("react")
        assert (a, b) == (0, 1)
        assert table.library.intern("jquery") == a
        assert table.library.decode(b) == "react"
        assert len(table.library) == 2

    def test_lookup_never_interns(self):
        table = SymbolTable()
        assert table.version.lookup("1.2.3") is None
        assert len(table.version) == 0

    def test_pair_domain_packs_and_decodes(self):
        table = SymbolTable()
        pair_id = table.libver.intern(("jquery", "1.12.4"))
        assert table.libver.decode(pair_id) == ("jquery", "1.12.4")
        assert table.libver.intern(("jquery", "1.12.4")) == pair_id
        lib_id = table.library.lookup("jquery")
        ver_id = table.version.lookup("1.12.4")
        assert table.libver.component_ids(pair_id) == (lib_id, ver_id)
        assert table.libver.intern_ids(lib_id, ver_id) == pair_id

    def test_canonical_order_sorts_by_symbol(self):
        table = SymbolTable()
        for name in ("zlib", "axios", "moment"):
            table.library.intern(name)
        order = table.library.canonical_order()
        assert [table.library.decode(i) for i in order] == [
            "axios",
            "moment",
            "zlib",
        ]

    def test_pair_canonical_order_sorts_by_decoded_tuple(self):
        table = SymbolTable()
        table.libver.intern(("react", "2.0"))
        table.libver.intern(("jquery", "3.0"))
        table.libver.intern(("jquery", "1.0"))
        order = table.libver.canonical_order()
        assert [table.libver.decode(i) for i in order] == [
            ("jquery", "1.0"),
            ("jquery", "3.0"),
            ("react", "2.0"),
        ]


class TestColumnViews:
    """The packed containers expose exact mapping-by-symbol semantics."""

    def test_week_counter_behaves_like_a_dict(self):
        store = _store()
        agg = store.ordered_weeks()[0]
        counter = agg.library_users
        assert not counter and len(counter) == 0
        counter["jquery"] = 3
        counter.inc_id(store.symbols.library.intern("react"))
        assert counter["jquery"] == 3 and counter.get("react") == 1
        assert counter.get("absent", 7) == 7 and "absent" not in counter
        assert dict(counter.items()) == {"jquery": 3, "react": 1}
        assert sorted(counter) == ["jquery", "react"]
        assert counter.to_dict() == {"jquery": 3, "react": 1}
        assert counter == {"jquery": 3, "react": 1}

    def test_trajectory_view_decodes_tuples(self):
        store = _store()
        store.trajectories.load_site(
            4, {"jquery": [(0, "1.0"), (3, "2.0")]}
        )
        site = store.trajectories[4]
        assert site["jquery"] == [(0, "1.0"), (3, "2.0")]
        assert site.get("react") is None
        assert store.trajectories.to_dict() == {
            4: {"jquery": [(0, "1.0"), (3, "2.0")]}
        }

    def test_flash_spans_pack_first_and_last(self):
        store = _store()
        store.flash_spans.observe(9, 2)
        store.flash_spans.observe(9, 5)
        store.flash_spans.observe(9, 7)
        assert store.flash_spans[9] == (2, 7)
        assert store.flash_spans == {9: (2, 7)}

    def test_site_sets_compact_past_threshold(self):
        from repro.crawler.columns import _SET_COMPACT_THRESHOLD, PackedIntSet

        packed = PackedIntSet()
        n = _SET_COMPACT_THRESHOLD + 100
        for rank in range(n, 0, -1):
            packed.add(rank)
            packed.add(rank)  # duplicate adds must not double-count
        assert len(packed) == n
        assert list(packed) == list(range(1, n + 1))
        assert 1 in packed and n in packed and n + 1 not in packed


class TestWordPressTrajectoryDedup:
    """Regression: the unreadable-version fallback must be normalized
    *before* the trajectory dedup compare.

    The old ingest appended ``version or "?"`` but compared the raw
    (possibly empty) version against the stored fallback, so a site
    whose WordPress version stayed unreadable logged one bogus "change"
    per week instead of one.
    """

    def _profile(self, wp_version):
        return PageProfile(page_host="site3.example", wordpress_version=wp_version)

    def test_unreadable_version_records_one_change(self):
        store = _store()
        weeks = store.calendar.weeks[:4]
        domain = _domain(3)
        for week in weeks:
            store.ingest(domain, week, self._profile(""))
        assert store.wp_trajectories[3] == [(weeks[0].ordinal, "?")]

    def test_unreadable_then_real_then_unreadable(self):
        store = _store()
        weeks = store.calendar.weeks[:4]
        domain = _domain(3)
        for week, version in zip(weeks, ["", "5.2", "5.2", ""]):
            store.ingest(domain, week, self._profile(version))
        assert store.wp_trajectories[3] == [
            (weeks[0].ordinal, "?"),
            (weeks[1].ordinal, "5.2"),
            (weeks[3].ordinal, "?"),
        ]

    def test_weekly_counts_unaffected(self):
        store = _store()
        weeks = store.calendar.weeks[:2]
        for week in weeks:
            store.ingest(_domain(3), week, self._profile(""))
        for agg in store.ordered_weeks()[:2]:
            assert agg.wordpress_versions == {"?": 1}
            assert agg.wordpress_sites == 1


class TestObservedVersionsMemo:
    def _ingest(self, store, rank, week, version):
        profile = PageProfile(
            page_host=f"site{rank}.example",
            libraries=(
                LibraryDetection(
                    library="jquery",
                    version=version,
                    source_url="/js/jquery.js",
                    host=None,
                    external=False,
                ),
            ),
        )
        store.ingest(_domain(rank), week, profile)

    def test_sorted_by_total_count_descending(self):
        store = _store()
        weeks = store.calendar.weeks
        self._ingest(store, 1, weeks[0], "1.0")
        self._ingest(store, 2, weeks[0], "2.0")
        self._ingest(store, 2, weeks[1], "2.0")
        assert store.observed_versions("jquery") == ["2.0", "1.0"]
        assert store.observed_versions("absent") == []

    def test_cache_rebuilds_after_ingest_and_merge(self):
        store = _store()
        weeks = store.calendar.weeks
        self._ingest(store, 1, weeks[0], "1.0")
        assert store.observed_versions("jquery") == ["1.0"]
        assert store._versions_cache is not None  # memoized
        self._ingest(store, 2, weeks[1], "3.0")
        assert store._versions_cache is None  # invalidated by ingest
        self._ingest(store, 3, weeks[1], "3.0")
        assert store.observed_versions("jquery") == ["3.0", "1.0"]

        other = _store()
        self._ingest(other, 4, weeks[2], "1.0")
        self._ingest(other, 5, weeks[2], "1.0")
        store.merge(other)
        assert store.observed_versions("jquery") == ["1.0", "3.0"]

    def test_repeated_calls_reuse_the_cache(self):
        store, _ = _crawled_store(population=30, seed=3, n_weeks=3)
        first = store.observed_versions("jquery")
        cache = store._versions_cache
        assert store.observed_versions("jquery") == first
        assert store._versions_cache is cache  # no rescan between calls


class TestBinaryRoundTrip:
    def test_roundtrip_preserves_every_surface(self):
        store, config = _crawled_store()
        blob = store_to_bytes(store)
        loaded = store_from_bytes(blob, config.calendar)
        assert store_to_dict(loaded) == store_to_dict(store)
        # Re-encoding the load is byte-identical: the encoding is a
        # pure function of store content, not intern history.
        assert store_to_bytes(loaded) == blob

    def test_blob_leads_with_magic_and_version(self):
        store, _ = _crawled_store(population=20, seed=2, n_weeks=2)
        blob = store_to_bytes(store)
        assert blob[:4] == b"RPS2"
        assert struct.unpack_from("<H", blob, 4)[0] == BINARY_FORMAT_VERSION

    def test_save_and_load_binary(self, tmp_path):
        store, config = _crawled_store(population=20, seed=2, n_weeks=2)
        path = tmp_path / "store.bin"
        save_store(store, path)
        assert path.read_bytes()[:4] == b"RPS2"
        loaded = load_store(path, config.calendar)
        assert store_to_dict(loaded) == store_to_dict(store)

    def test_empty_store_roundtrips(self):
        config = ScenarioConfig(population=10, seed=1)
        store = _store(config)
        blob = store_to_bytes(store)
        loaded = store_from_bytes(blob, config.calendar)
        assert store_to_dict(loaded) == store_to_dict(store)


class TestCorruptionMatrix:
    """Every damaged blob fails with a typed StoreError, never garbage."""

    @pytest.fixture(scope="class")
    def blob(self):
        store, config = _crawled_store(population=30, seed=4, n_weeks=3)
        return store_to_bytes(store), config.calendar

    def test_truncation_at_every_region(self, blob):
        data, calendar = blob
        # Cut inside the header, each section, and the trailer.
        for cut in (0, 3, 5, 40, len(data) // 2, len(data) - 20, len(data) - 1):
            with pytest.raises(StoreError):
                store_from_bytes(data[:cut], calendar)

    def test_flipped_byte_anywhere_fails_the_trailer(self, blob):
        data, calendar = blob
        for pos in (6, 20, len(data) // 2, len(data) - 40, len(data) - 1):
            flipped = bytearray(data)
            flipped[pos] ^= 0x01
            with pytest.raises(StoreError):
                store_from_bytes(bytes(flipped), calendar)

    def test_wrong_format_version(self, blob):
        data, calendar = blob
        bad = bytearray(data)
        struct.pack_into("<H", bad, 4, 99)
        with pytest.raises(StoreError, match="unsupported store format"):
            store_from_bytes(bytes(bad), calendar)

    def test_wrong_magic(self, blob):
        data, calendar = blob
        with pytest.raises(StoreError, match="magic"):
            store_from_bytes(b"XXXX" + data[4:], calendar)

    def test_load_store_carries_the_path(self, tmp_path, blob):
        data, calendar = blob
        path = tmp_path / "store.bin"
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StoreError) as excinfo:
            load_store(path, calendar)
        assert excinfo.value.path == str(path)

    def test_unreadable_file_is_typed(self, tmp_path, blob):
        _, calendar = blob
        with pytest.raises(StoreError):
            load_store(tmp_path / "missing.bin", calendar)

    def test_non_store_file_is_typed(self, tmp_path, blob):
        _, calendar = blob
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01" * 64)
        with pytest.raises(StoreError):
            load_store(path, calendar)


class TestJsonInterchange:
    """The canonical JSON export anchors the migration."""

    def test_export_is_loadable_and_checksummed(self, tmp_path):
        store, config = _crawled_store(population=20, seed=2, n_weeks=2)
        path = tmp_path / "store.json"
        export_store_json(store, path)
        document = json.loads(path.read_text())
        body = json.dumps(document["store"], sort_keys=True)
        assert (
            hashlib.sha256(body.encode()).hexdigest() == document["checksum"]
        )
        loaded = load_store(path, config.calendar)
        assert store_to_dict(loaded) == store_to_dict(store)

    def test_json_tamper_fails_checksum(self, tmp_path):
        store, config = _crawled_store(population=20, seed=2, n_weeks=2)
        path = tmp_path / "store.json"
        export_store_json(store, path)
        document = json.loads(path.read_text())
        document["store"]["total_observations"] += 1
        path.write_text(json.dumps(document, sort_keys=True))
        with pytest.raises(StoreError, match="checksum"):
            load_store(path, config.calendar)

    def test_dict_codec_roundtrip(self):
        store, config = _crawled_store(population=30, seed=4, n_weeks=3)
        payload = json.loads(json.dumps(store_to_dict(store)))
        loaded = store_from_dict(payload, config.calendar)
        assert store_to_dict(loaded) == store_to_dict(store)
        # And the binary encodings agree: both codecs describe the same
        # store.
        assert store_to_bytes(loaded) == store_to_bytes(store)

    def test_pinned_migration_digest(self):
        """The JSON export is byte-for-byte the pre-columnar document.

        The digest below was computed on the pre-refactor dict-based
        store for the same scenario; the columnar store must keep
        producing it forever (it anchors every byte-identity contract
        across the format migration).
        """
        config = ScenarioConfig(population=500, seed=123)
        crawler = Crawler(WebEcosystem(config), mode="manifest")
        crawler.run()
        digest = hashlib.sha256(
            json.dumps(store_to_dict(crawler.store), sort_keys=True).encode()
        ).hexdigest()
        assert digest == (
            "eac5e15856050c1725a2405f3c5157338180f9fb30ae11181ac70404af1d42ef"
        )
