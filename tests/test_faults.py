"""Unit tests for the chaos layer: fault plans, resilient dispatch,
failure isolation, and backend resolution.

The end-to-end contracts (store identity, fault-run determinism, cache
identity) live in ``test_invariants.py``; this file pins the building
blocks those properties stand on.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import ScenarioConfig, Study
from repro.errors import ConfigError, CrawlError, ShardExecutionError
from repro.netsim.network import FailureModel, HostCondition
from repro.runtime import (
    BACKOFF_BASE,
    BACKOFF_CAP,
    DispatchResult,
    FaultPlan,
    ProcessBackend,
    SerialBackend,
    ShardTask,
    SimulatedClock,
    ThreadBackend,
    backoff_delay,
    dispatch_shards,
    get_backend,
)


class TestFaultPlan:
    def test_rates_must_be_probabilities(self):
        for field in (
            "crash_rate",
            "timeout_rate",
            "surge_connect_failure_rate",
            "surge_timeout_rate",
            "surge_server_error_rate",
        ):
            for bad in (-0.1, 1.5):
                with pytest.raises(ConfigError, match=field):
                    FaultPlan(**{field: bad})

    def test_surge_weeks_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="surge_weeks"):
            FaultPlan(surge_weeks=(3, -1))

    def test_shard_fault_is_pure(self):
        plan = FaultPlan(seed=9, crash_rate=0.5, timeout_rate=0.5)
        key = "weeks:0-3|domains:a.example..z.example|n=40"
        verdicts = [plan.shard_fault(key, attempt) for attempt in range(6)]
        assert verdicts == [plan.shard_fault(key, a) for a in range(6)]
        # A different attempt is a fresh draw; a different key is too.
        assert plan.shard_fault(key, 0) == plan.shard_fault(key, 0)
        assert any(v is not None for v in verdicts)

    def test_extreme_rates_pin_the_channels(self):
        assert FaultPlan(crash_rate=1.0).shard_fault("k", 0) == "crash"
        # The crash channel is drawn first; with it silent, a certain
        # timeout always fires.
        assert FaultPlan(timeout_rate=1.0).shard_fault("k", 0) == "timeout"
        assert FaultPlan().shard_fault("k", 0) is None

    def test_injects_shard_faults_flag(self):
        assert not FaultPlan().injects_shard_faults
        assert not FaultPlan(surge_weeks=(1,), surge_timeout_rate=0.5).injects_shard_faults
        assert FaultPlan(crash_rate=0.1).injects_shard_faults
        assert FaultPlan(timeout_rate=0.1).injects_shard_faults

    def test_surge_conditions_cover_exactly_the_surge_weeks(self):
        plan = FaultPlan(
            surge_weeks=(2, 3, 4),
            surge_connect_failure_rate=0.1,
            surge_timeout_rate=0.2,
            surge_server_error_rate=0.3,
        )
        conditions = plan.surge_conditions()
        assert sorted(conditions) == [2, 3, 4]
        assert conditions[3].server_error_rate == 0.3
        assert FaultPlan(crash_rate=0.5).surge_conditions() == {}

    def test_from_spec_round_trips_describe(self):
        plan = FaultPlan(
            seed=7,
            crash_rate=0.25,
            timeout_rate=0.1,
            surge_weeks=(0, 1, 2, 3, 4, 5),
            surge_server_error_rate=0.6,
        )
        assert FaultPlan.from_spec(plan.describe()) == plan

    def test_from_spec_parses_single_week_and_ranges(self):
        assert FaultPlan.from_spec("weeks=4").surge_weeks == (4,)
        assert FaultPlan.from_spec("weeks=2-5").surge_weeks == (2, 3, 4, 5)
        assert FaultPlan.from_spec("seed=3").seed == 3
        assert FaultPlan.from_spec("").crash_rate == 0.0

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("crash", "expected key=value"),
            ("bogus=1", "unknown fault-plan key"),
            ("crash=lots", "bad fault-plan value"),
            ("weeks=5-2", "bad fault-plan value"),
            ("crash=1.5", "must be a probability"),
        ],
    )
    def test_from_spec_rejects_bad_specs(self, spec, match):
        with pytest.raises(ConfigError, match=match):
            FaultPlan.from_spec(spec)


class TestSurgedFailureModel:
    def test_surge_adds_to_base_rates_only_on_surge_clocks(self):
        failures = FailureModel(seed=1)
        failures.set_condition(
            "flaky.example", HostCondition(server_error_rate=0.5)
        )
        failures.surge = {7: HostCondition(server_error_rate=0.3, timeout_rate=0.2)}
        assert failures.effective_rates("flaky.example", 6) == (0.0, 0.0, 0.5)
        assert failures.effective_rates("flaky.example", 7) == (0.0, 0.2, 0.8)
        assert failures.effective_rates("steady.example", 7) == (0.0, 0.2, 0.3)

    def test_surge_rates_cap_at_one(self):
        failures = FailureModel()
        failures.set_condition("h.example", HostCondition(timeout_rate=0.9))
        failures.surge = {0: HostCondition(timeout_rate=0.9)}
        assert failures.effective_rates("h.example", 0)[1] == 1.0
        assert failures.outcome("h.example", 0, 0) == "timeout"


# ----------------------------------------------------------------------
# Dispatch: retries, backoff, degradation, wrapped errors
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FakeTask:
    """The slice of the ShardTask surface dispatch_shards touches."""

    shard_index: int
    attempt: int = 0

    def describe(self):
        return f"shard {self.shard_index} [fake]"


def _flaky_runner(failures_before_success):
    """A run_task stub that fails the first N attempts of each shard."""

    def run(task):
        if task.attempt < failures_before_success.get(task.shard_index, 0):
            return {
                "ok": False,
                "error": "RuntimeError: transient",
                "injected": False,
                "shard": task.describe(),
            }
        return {"ok": True, "shard_index": task.shard_index}

    return run


class TestBackoff:
    def test_backoff_doubles_from_base_and_caps(self):
        assert [backoff_delay(a) for a in range(6)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            8.0,
            8.0,
        ]
        assert backoff_delay(0) == BACKOFF_BASE
        assert backoff_delay(50) == BACKOFF_CAP

    def test_simulated_clock_accumulates_without_sleeping(self):
        clock = SimulatedClock()
        clock.sleep(0.5)
        clock.sleep(1.0)
        assert clock.now == 1.5
        assert clock.sleeps == [0.5, 1.0]


class TestDispatchShards:
    def test_transient_failures_are_retried_to_success(self):
        tasks = [FakeTask(shard_index=i) for i in range(3)]
        clock = SimulatedClock()
        outcome = dispatch_shards(
            SerialBackend(),
            tasks,
            max_retries=2,
            clock=clock,
            run_task=_flaky_runner({1: 2}),  # shard 1 fails twice
        )
        assert isinstance(outcome, DispatchResult)
        assert [p and p["shard_index"] for p in outcome.payloads] == [0, 1, 2]
        assert outcome.dropped == []
        assert outcome.retries == 2
        # attempts 0 and 1 failed: 0.5s + 1.0s of simulated backoff.
        assert outcome.backoff_seconds == 1.5
        assert clock.sleeps == [0.5, 1.0]

    def test_exhausted_unexpected_failure_raises_wrapped_error(self):
        tasks = [FakeTask(shard_index=0)]
        with pytest.raises(ShardExecutionError) as excinfo:
            dispatch_shards(
                SerialBackend(),
                tasks,
                max_retries=1,
                run_task=_flaky_runner({0: 99}),
            )
        error = excinfo.value
        assert error.shard_index == 0
        assert error.attempts == 2
        assert "shard 0 [fake]" in str(error)
        assert "RuntimeError: transient" in str(error)

    def test_degrade_policy_drops_instead_of_raising(self):
        tasks = [FakeTask(shard_index=0), FakeTask(shard_index=1)]
        outcome = dispatch_shards(
            SerialBackend(),
            tasks,
            max_retries=0,
            on_failure="degrade",
            run_task=_flaky_runner({1: 99}),
        )
        assert outcome.payloads[0]["ok"]
        assert outcome.payloads[1] is None
        assert [f.shard_index for f in outcome.dropped] == [1]
        assert outcome.dropped[0].attempts == 1
        assert not outcome.dropped[0].injected

    def test_injected_failures_always_degrade_under_raise_policy(self):
        def injected_crash(task):
            return {
                "ok": False,
                "error": "InjectedWorkerCrash: injected worker crash",
                "injected": True,
                "shard": task.describe(),
            }

        outcome = dispatch_shards(
            SerialBackend(),
            [FakeTask(shard_index=0)],
            max_retries=2,
            on_failure="raise",
            run_task=injected_crash,
        )
        assert [f.shard_index for f in outcome.dropped] == [0]
        assert outcome.dropped[0].injected
        assert outcome.retries == 2
        assert outcome.backoff_seconds == 1.5


# ----------------------------------------------------------------------
# Failure isolation end-to-end: wrapped errors name the shard
# ----------------------------------------------------------------------
class TestShardErrorContext:
    def test_worker_exception_is_wrapped_with_shard_identity(self, monkeypatch):
        import repro.runtime.worker as worker_module

        def explode(task):
            raise ValueError("catastrophic fingerprint failure")

        monkeypatch.setattr(worker_module, "execute_shard", explode)
        from repro.options import RunOptions

        study = Study(
            ScenarioConfig(population=20, seed=5),
            options=RunOptions.from_kwargs(
                workers=2, backend="thread", max_shard_retries=1
            ),
        )
        weeks = study.config.calendar.weeks[:2]
        with pytest.raises(ShardExecutionError) as excinfo:
            study.run(weeks=weeks)
        message = str(excinfo.value)
        # The wrapped error names the shard: its week span, its domain
        # span, and the backend it ran on.
        assert "shard 0" in message
        assert "week" in message
        assert "domain" in message
        assert "backend thread" in message
        assert "failed after 2 attempts" in message
        assert "ValueError: catastrophic fingerprint failure" in message

    def test_degraded_study_completes_with_empty_store(self):
        from repro.options import RunOptions

        study = Study(
            ScenarioConfig(population=20, seed=5),
            options=RunOptions.from_kwargs(
                workers=2,
                backend="serial",
                max_shard_retries=1,
                fault_plan=FaultPlan(seed=1, crash_rate=1.0),
            ),
        )
        weeks = study.config.calendar.weeks[:2]
        report = study.run(weeks=weeks)
        assert report.degraded
        assert report.dropped_shards > 0
        assert report.pages_collected == 0
        # The study path applies the paper's prefilter, so the dropped
        # grid is weeks x *retained* domains.
        assert report.dropped_cells == len(weeks) * report.domains_crawled
        assert all("injected worker crash" in line for line in report.shard_errors)
        # max_shard_retries=1: each shard backs off once (0.5 simulated
        # seconds) between its two doomed attempts.
        assert report.backoff_seconds == report.dropped_shards * 0.5
        assert report.shard_retries == report.dropped_shards
        assert study.store.average_collected() == 0.0


# ----------------------------------------------------------------------
# Backend resolution (the SerialBackend workers fix + auto on 1 CPU)
# ----------------------------------------------------------------------
class TestBackendResolution:
    def test_serial_backend_pins_workers_but_keeps_request(self):
        backend = SerialBackend(workers=3)
        assert backend.workers == 1
        assert backend.requested_workers == 3

    def test_serial_backend_rejects_nonpositive_workers(self):
        # Worker validation is normalized across backends: every
        # constructor (and get_backend) raises the same typed
        # ConfigError, not a CrawlError.
        with pytest.raises(ConfigError, match="workers must be >= 1"):
            SerialBackend(workers=0)

    def test_auto_resolution_by_worker_count(self):
        # The 1-CPU container case: auto with one worker stays serial.
        assert isinstance(get_backend("auto", workers=1), SerialBackend)
        assert isinstance(get_backend("auto", workers=2), ProcessBackend)
        assert isinstance(get_backend("thread", workers=2), ThreadBackend)

    def test_unknown_backend_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown execution backend"):
            get_backend("quantum")


class TestShardTaskIdentity:
    def _task(self, **overrides):
        fields = dict(
            config=ScenarioConfig(population=20, seed=5),
            mode="manifest",
            week_ordinals=(3, 4, 5),
            domain_names=("a.example", "b.example", "c.example"),
            shard_index=4,
            backend_name="process",
        )
        fields.update(overrides)
        return ShardTask(**fields)

    def test_shard_key_ignores_backend_and_attempt(self):
        base = self._task()
        assert (
            base.shard_key()
            == self._task(attempt=2, backend_name="serial").shard_key()
        )
        assert base.shard_key() == "weeks:3-5|domains:a.example..c.example|n=3"
        assert self._task(week_ordinals=()).shard_key() == "empty"

    def test_describe_names_spans_and_backend(self):
        text = self._task().describe()
        assert "shard 4" in text
        assert "weeks 3-5" in text
        assert "a.example..c.example (3)" in text
        assert "backend process" in text
        single = self._task(
            week_ordinals=(3,), domain_names=("a.example",)
        ).describe()
        assert "week 3" in single and "domain a.example" in single
