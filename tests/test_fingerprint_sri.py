"""Subresource Integrity primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FingerprintError
from repro.fingerprint.sri import (
    compute_integrity,
    parse_integrity,
    verify_integrity,
)


class TestCompute:
    def test_known_shape(self):
        token = compute_integrity(b"hello", "sha256")
        assert token.startswith("sha256-")
        assert len(token) > 20

    def test_algorithms_differ(self):
        assert compute_integrity(b"x", "sha256") != compute_integrity(b"x", "sha512")

    def test_unknown_algorithm(self):
        with pytest.raises(FingerprintError):
            compute_integrity(b"x", "md5")


class TestParse:
    def test_valid_tokens(self):
        tokens = parse_integrity("sha256-abc sha384-def=")
        assert [t.algorithm for t in tokens] == ["sha256", "sha384"]

    def test_malformed_skipped(self):
        assert parse_integrity("md5-x not-a-token sha999-y") == []

    def test_empty(self):
        assert parse_integrity("") == []


class TestVerify:
    def test_match(self):
        body = b"console.log(1);"
        assert verify_integrity(body, compute_integrity(body))

    def test_mismatch(self):
        assert not verify_integrity(b"evil", compute_integrity(b"good"))

    def test_strongest_algorithm_wins(self):
        body = b"lib"
        good_weak = compute_integrity(body, "sha256")
        bad_strong = compute_integrity(b"other", "sha512")
        # Browser only consults the strongest listed algorithm.
        assert not verify_integrity(body, f"{good_weak} {bad_strong}")

    def test_any_match_within_strongest(self):
        body = b"lib"
        assert verify_integrity(
            body,
            f"{compute_integrity(b'other', 'sha384')} {compute_integrity(body, 'sha384')}",
        )

    def test_no_valid_tokens_is_unconstrained(self):
        assert verify_integrity(b"anything", "garbage")


@given(st.binary(max_size=256))
def test_roundtrip_property(body):
    """Property: content always verifies against its own digest."""
    for algorithm in ("sha256", "sha384", "sha512"):
        assert verify_integrity(body, compute_integrity(body, algorithm))


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
def test_tamper_detected_property(a, b):
    """Property: differing content fails verification."""
    if a != b:
        assert not verify_integrity(b, compute_integrity(a))
