"""Web ecosystem generator: domains, platform, flash, sites."""

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.timeline import default_calendar
from repro.webgen import DomainPopulation, Reachability, WebEcosystem
from repro.webgen.flashgen import FlashModel
from repro.webgen.libraries import TOP15_ORDER, library_profiles
from repro.webgen.platform import WordPressModel, bundled_libraries
from repro.webgen.site import SiteState, UpdatePolicy


@pytest.fixture(scope="module")
def config():
    return ScenarioConfig(population=300, seed=77)


@pytest.fixture(scope="module")
def eco(config):
    return WebEcosystem(config)


class TestDomains:
    def test_population_size_and_ranks(self, config):
        rng = np.random.default_rng(1)
        population = DomainPopulation(100, config.accessibility, rng, 201)
        assert len(population) == 100
        assert [d.rank for d in population][:3] == [1, 2, 3]

    def test_tiers(self, config):
        rng = np.random.default_rng(1)
        population = DomainPopulation(100, config.accessibility, rng, 201)
        assert population[0].tier == "top1k"

    def test_by_name(self, eco):
        domain = eco.population[5]
        assert eco.population.by_name(domain.name) is domain
        assert eco.population.by_name("unknown.example") is None

    def test_reachability_mix(self, config):
        rng = np.random.default_rng(1)
        population = DomainPopulation(2000, config.accessibility, rng, 201)
        kinds = {k: 0 for k in Reachability}
        for domain in population:
            kinds[domain.reachability] += 1
        assert kinds[Reachability.STABLE] > 1000
        assert kinds[Reachability.DEAD] > 100
        assert kinds[Reachability.DIES] > 30

    def test_dies_has_death_week(self, config):
        rng = np.random.default_rng(1)
        population = DomainPopulation(2000, config.accessibility, rng, 201)
        for domain in population:
            if domain.reachability is Reachability.DIES:
                assert domain.death_week is not None
                assert not domain.alive_at(domain.death_week)
                assert domain.alive_at(domain.death_week - 1)

    def test_alive_count_decreases(self, config):
        rng = np.random.default_rng(1)
        population = DomainPopulation(2000, config.accessibility, rng, 201)
        assert population.alive_count(200) <= population.alive_count(0)


class TestWordPressModel:
    def test_bundles(self):
        assert bundled_libraries("4.9.8") == ("1.12.4", "1.4.1")
        assert bundled_libraries("5.5.1") == ("1.12.4", None)  # migrate dropped
        assert bundled_libraries("5.6") == ("3.5.1", "3.3.2")
        assert bundled_libraries("5.8.1") == ("3.6.0", "3.3.2")

    def test_auto_timeline_reaches_56_after_dec2020(self):
        model = WordPressModel(ScenarioConfig().platform, default_calendar())
        rng = np.random.default_rng(3)
        timeline = model.version_timeline(rng, auto_update=True)
        calendar = default_calendar()
        import datetime

        ordinal = calendar.week_for_date(datetime.date(2021, 3, 1)).ordinal
        version = WordPressModel.version_at(timeline, ordinal)
        from repro.semver import Version

        assert Version(version) >= Version("5.6")

    def test_timeline_versions_monotone(self):
        model = WordPressModel(ScenarioConfig().platform, default_calendar())
        from repro.semver import Version

        for seed in range(5):
            rng = np.random.default_rng(seed)
            timeline = model.version_timeline(rng, auto_update=bool(seed % 2))
            versions = [Version(v) for _, v in timeline]
            assert versions == sorted(versions)


class TestFlashModel:
    def test_always_share_ramps(self):
        model = FlashModel(ScenarioConfig().flash, default_calendar())
        assert model.always_share_at(0) == pytest.approx(0.21)
        assert model.always_share_at(200) == pytest.approx(0.30)

    def test_assignments_deterministic(self):
        model = FlashModel(ScenarioConfig().flash, default_calendar())
        a = model.assign(np.random.default_rng(9), 0.5)
        b = model.assign(np.random.default_rng(9), 0.5)
        assert a == b

    def test_non_user(self):
        model = FlashModel(ScenarioConfig().flash, default_calendar())
        # percentile 0 and a seed whose first draw misses the tiny share
        assignment = model.assign(np.random.default_rng(1), 0.0)
        assert not assignment.uses_flash
        assert not assignment.active_at(0)

    def test_script_access_can_flip_to_always(self):
        from repro.webgen.flashgen import FlashAssignment

        model = FlashModel(ScenarioConfig().flash, default_calendar())
        # A draw between the start (21%) and end (30%) shares writes
        # sameDomain early in the study and always late — the mechanism
        # behind Figure 11's growth.
        assignment = FlashAssignment(
            uses_flash=True,
            drop_week=None,
            access_draw=0.25,
            specifies_access=True,
            never_option=False,
            visible=True,
            external_swf=False,
        )
        early, _ = model.script_access_at(assignment, 0)
        late, _ = model.script_access_at(assignment, 200)
        assert early == "sameDomain"
        assert late == "always"


class TestSiteState:
    def test_deterministic(self, config, eco):
        domain = eco.population[10]
        a = SiteState(domain, config, eco.wordpress_model, eco.flash_model)
        b = SiteState(domain, config, eco.wordpress_model, eco.flash_model)
        assert a.manifest(100) == b.manifest(100)

    def test_frozen_sites_never_change_versions(self, config, eco):
        calendar = config.calendar
        for domain in eco.population:
            state = eco.site_state(domain)
            if state.policy is not UpdatePolicy.FROZEN or state.uses_wordpress:
                continue
            for membership in state.memberships:
                assert len(membership.version_timeline) == 1

    def test_version_timelines_monotone(self, eco):
        from repro.semver import parse_version

        for domain in list(eco.population)[:150]:
            state = eco.site_state(domain)
            for membership in state.memberships:
                versions = [parse_version(v) for _, v in membership.version_timeline]
                assert versions == sorted(versions), membership.library

    def test_manifest_versions_exist_at_date(self, eco, config):
        """No site carries a version before its release date."""
        from repro.semver import builtin_catalogs

        catalogs = builtin_catalogs()
        calendar = config.calendar
        for domain in list(eco.population)[:60]:
            for ordinal in (0, 100, 200):
                manifest = eco.manifest(domain, ordinal)
                for inclusion in manifest.libraries:
                    catalog = catalogs.get(inclusion.library)
                    if catalog is None or inclusion.version not in catalog:
                        continue
                    release = catalog.get(inclusion.version)
                    assert release.date <= calendar.week_at(ordinal).date, (
                        domain.name, inclusion.library, inclusion.version
                    )

    def test_wordpress_bundle_follows_platform(self, eco):
        for domain in eco.population:
            state = eco.site_state(domain)
            if not (state.uses_wordpress and state.wordpress_bundled):
                continue
            manifest = eco.manifest(domain, 0)
            jquery = manifest.inclusion_of("jquery")
            assert jquery is not None and jquery.wordpress_bundled
            expected_jquery, _ = bundled_libraries(manifest.wordpress_version)
            assert jquery.version == expected_jquery

    def test_migrate_dip_for_auto_wordpress(self, eco, config):
        """Auto-updating WP sites lose jQuery-Migrate on 5.5, regain on 5.6."""
        calendar = config.calendar
        import datetime

        w_55 = calendar.week_for_date(datetime.date(2020, 11, 1)).ordinal
        w_56 = calendar.week_for_date(datetime.date(2021, 6, 1)).ordinal
        observed_dip = False
        for domain in eco.population:
            state = eco.site_state(domain)
            if not (state.uses_wordpress and state.wordpress_auto and state.wordpress_bundled):
                continue
            during = eco.manifest(domain, w_55).inclusion_of("jquery-migrate")
            after = eco.manifest(domain, w_56).inclusion_of("jquery-migrate")
            if during is None and after is not None:
                observed_dip = True
                break
        assert observed_dip

    def test_library_shares_roughly_calibrated(self, eco, config):
        counts = {name: 0 for name in TOP15_ORDER}
        n = len(eco.population)
        for domain in eco.population:
            manifest = eco.manifest(domain, 0)
            for inclusion in manifest.libraries:
                counts[inclusion.library] += 1
        jquery_share = counts["jquery"] / n
        assert 0.5 < jquery_share < 0.8
        assert counts["bootstrap"] / n > 0.1
        assert counts["jquery"] > counts["jquery-ui"]

    def test_requires_correlation(self, eco):
        """Popper users overwhelmingly also use Bootstrap."""
        with_bootstrap = 0
        popper_users = 0
        for domain in eco.population:
            manifest = eco.manifest(domain, 0)
            libs = {i.library for i in manifest.libraries}
            if "popper" in libs:
                popper_users += 1
                if "bootstrap" in libs:
                    with_bootstrap += 1
        if popper_users >= 5:
            assert with_bootstrap / popper_users > 0.5


class TestEcosystem:
    def test_cdn_hosts_attached(self, eco):
        assert "ajax.googleapis.com" in eco.network
        assert "cdn.static-assets.net" in eco.network

    def test_set_week_rewind(self, eco):
        eco.set_week(200)
        eco.set_week(0)
        for domain in eco.population:
            if domain.reachability is Reachability.DIES:
                assert domain.name in eco.network
                break

    def test_landing_page_contains_scripts(self, eco):
        domain = next(
            d for d in eco.population if d.reachability is Reachability.STABLE
        )
        html = eco.landing_page(domain, 0)
        assert "<script" in html and domain.name in html
