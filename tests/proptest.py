"""A tiny stdlib-only property-testing layer for the invariant suite.

No hypothesis dependency: generators are plain functions over
``random.Random``, and :func:`forall` sweeps a property over a fixed
seed matrix so every run — local or CI — exercises the identical cases.
On failure the offending seed is named, so a red property reproduces
with ``REPRO_PROP_SEEDS=<seed>``.

Generators lean small on purpose: the suite runs on a 1-CPU container,
so populations stay in the tens and week windows in the single digits —
enough to cover shard-boundary, retry, and merge edge cases without
minutes of wall clock.
"""

from __future__ import annotations

import os
import random
from typing import Callable, List, Sequence, Tuple

#: The fixed CI seed matrix.  Every seed is one generated scenario ×
#: fault plan × sharding combination; override (e.g. to widen the sweep
#: or replay one failure) with REPRO_PROP_SEEDS=11,97,...
SEED_MATRIX: Tuple[int, ...] = (11, 47, 83)


def seed_matrix() -> Tuple[int, ...]:
    env = os.environ.get("REPRO_PROP_SEEDS")
    if env:
        return tuple(int(token) for token in env.split(",") if token.strip())
    return SEED_MATRIX


def forall(
    prop: Callable[[random.Random, int], None],
    seeds: Sequence[int] = (),
) -> None:
    """Run ``prop(rng, seed)`` for every seed; name the seed on failure."""
    for seed in seeds or seed_matrix():
        rng = random.Random(seed)
        try:
            prop(rng, seed)
        except AssertionError as exc:
            raise AssertionError(
                f"property {prop.__name__} failed at seed={seed}: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def contiguous_partition(
    rng: random.Random, total: int, max_parts: int
) -> List[Tuple[int, int]]:
    """Random contiguous ``[lo, hi)`` runs covering ``range(total)`` exactly."""
    if total <= 0:
        return []
    parts = rng.randint(1, max(1, min(max_parts, total)))
    cuts = sorted(rng.sample(range(1, total), parts - 1)) if parts > 1 else []
    bounds = [0] + cuts + [total]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


def grid_splits(
    rng: random.Random,
    n_weeks: int,
    n_domains: int,
    max_parts_per_axis: int = 3,
) -> List[Tuple[int, int, int, int]]:
    """A random rectangular partition of the ``weeks × domains`` grid.

    Returns ``(week_lo, week_hi, domain_lo, domain_hi)`` blocks whose
    week runs are contiguous and non-interleaved per domain — the same
    invariant the shard planner guarantees, so
    :meth:`~repro.crawler.ObservationStore.merge` must reassemble them
    exactly.
    """
    week_runs = contiguous_partition(rng, n_weeks, max_parts_per_axis)
    domain_runs = contiguous_partition(rng, n_domains, max_parts_per_axis)
    return [
        (w_lo, w_hi, d_lo, d_hi)
        for (w_lo, w_hi) in week_runs
        for (d_lo, d_hi) in domain_runs
    ]


def fault_plan(rng: random.Random, week_ordinals: Sequence[int]):
    """A random-but-seeded fault plan over the given crawl window."""
    from repro.runtime import FaultPlan

    surge_weeks: Tuple[int, ...] = ()
    if week_ordinals and rng.random() < 0.7:
        count = rng.randint(1, len(week_ordinals))
        start = rng.randrange(len(week_ordinals) - count + 1)
        surge_weeks = tuple(week_ordinals[start : start + count])
    return FaultPlan(
        seed=rng.randrange(1 << 16),
        crash_rate=rng.choice((0.0, 0.3, 0.6, 1.0)),
        timeout_rate=rng.choice((0.0, 0.25, 0.5)),
        surge_weeks=surge_weeks,
        surge_connect_failure_rate=rng.choice((0.0, 0.2)),
        surge_timeout_rate=rng.choice((0.0, 0.3)),
        surge_server_error_rate=rng.choice((0.0, 0.4)),
    )
