"""Crawler: fetcher, filter, store, and full/manifest equivalence."""

import pytest

from repro.config import ScenarioConfig
from repro.crawler import AccessibilityFilter, Crawler, Fetcher
from repro.crawler.crawl import profile_from_manifest
from repro.crawler.fetch import FetchOutcome
from repro.errors import CrawlError
from repro.fingerprint import FingerprintEngine
from repro.netsim import StaticHost, VirtualNetwork, text_response
from repro.netsim.network import HostCondition
from repro.netsim.server import FunctionHost
from repro.webgen import WebEcosystem
from repro.webgen.domains import Reachability


class TestFetcher:
    def _network(self):
        network = VirtualNetwork()
        network.attach(
            "ok.example", StaticHost("ok.example", {"/": "<html>" + "x" * 500 + "</html>"})
        )
        return network

    def test_ok(self):
        result = Fetcher(self._network()).fetch_domain("ok.example")
        assert result.ok and result.status == 200 and result.size > 400

    def test_dns_failure(self):
        result = Fetcher(self._network()).fetch_domain("nxdomain.example")
        assert result.outcome is FetchOutcome.DNS_FAILURE
        assert not result.ok

    def test_http_error(self):
        network = self._network()
        result = Fetcher(network).fetch("https://ok.example/missing")
        assert result.outcome is FetchOutcome.HTTP_ERROR
        assert result.status == 404

    def test_retry_then_fail(self):
        network = self._network()
        network.failures.set_condition(
            "ok.example", HostCondition(connect_failure_rate=1.0)
        )
        result = Fetcher(network, retries=1).fetch_domain("ok.example")
        assert result.outcome is FetchOutcome.CONNECT_FAILURE
        assert result.attempts == 2

    def test_redirect_followed(self):
        network = VirtualNetwork()
        network.attach(
            "a.example",
            FunctionHost(
                "a.example",
                lambda req: text_response(
                    "", status=301, headers={"location": "https://b.example/"}
                ),
            ),
        )
        network.attach("b.example", StaticHost("b.example", {"/": "landed"}))
        result = Fetcher(network).fetch_domain("a.example")
        assert result.ok and result.text == "landed"

    def test_redirect_loop(self):
        network = VirtualNetwork()
        network.attach(
            "loop.example",
            FunctionHost(
                "loop.example",
                lambda req: text_response(
                    "", status=302, headers={"location": "https://loop.example/"}
                ),
            ),
        )
        result = Fetcher(network, max_redirects=3).fetch_domain("loop.example")
        assert result.outcome is FetchOutcome.REDIRECT_LOOP


class TestFetcherEdgeCases:
    """Boundary settings: zero retries, zero redirects, terminal 5xx."""

    def _flaky_network(self, condition):
        network = VirtualNetwork()
        network.attach("edge.example", StaticHost("edge.example", {"/": "body"}))
        network.failures.set_condition("edge.example", condition)
        return network

    @pytest.mark.parametrize(
        "condition, expected_outcome",
        [
            (
                HostCondition(connect_failure_rate=1.0),
                FetchOutcome.CONNECT_FAILURE,
            ),
            (HostCondition(timeout_rate=1.0), FetchOutcome.TIMEOUT),
        ],
        ids=["connect-failure", "timeout"],
    )
    def test_zero_retries_fails_after_one_attempt(
        self, condition, expected_outcome
    ):
        network = self._flaky_network(condition)
        result = Fetcher(network, retries=0).fetch_domain("edge.example")
        assert result.outcome is expected_outcome
        assert result.attempts == 1

    def test_zero_redirect_budget_rejects_any_redirect(self):
        network = VirtualNetwork()
        network.attach(
            "hop.example",
            FunctionHost(
                "hop.example",
                lambda req: text_response(
                    "", status=301, headers={"location": "https://end.example/"}
                ),
            ),
        )
        network.attach("end.example", StaticHost("end.example", {"/": "landed"}))
        result = Fetcher(network, max_redirects=0).fetch_domain("hop.example")
        assert result.outcome is FetchOutcome.REDIRECT_LOOP
        assert result.attempts == 1

    def test_redirect_chain_ending_in_5xx_is_terminal(self):
        # a 301s to b; b always answers 503.  The 5xx is an HTTP-level
        # outcome, not a transport failure, so even with a retry budget
        # the fetcher must not retry it.
        network = VirtualNetwork()
        network.attach(
            "a.example",
            FunctionHost(
                "a.example",
                lambda req: text_response(
                    "", status=301, headers={"location": "https://b.example/"}
                ),
            ),
        )
        network.attach("b.example", StaticHost("b.example", {"/": "fine"}))
        network.failures.set_condition(
            "b.example", HostCondition(server_error_rate=1.0)
        )
        result = Fetcher(network, retries=1).fetch_domain("a.example")
        assert result.outcome is FetchOutcome.HTTP_ERROR
        assert result.status == 503
        assert result.attempts == 1
        assert result.final_url == "https://b.example/"


class TestFilter:
    def test_filter_removes_dead_and_antibot(self):
        config = ScenarioConfig(population=300, seed=9)
        ecosystem = WebEcosystem(config)
        retained, report = AccessibilityFilter(ecosystem).run()
        assert report.total_domains == 300
        assert 0 < report.removed < 300
        for domain in ecosystem.population:
            if domain.reachability is Reachability.DEAD:
                assert domain.name not in retained
            if domain.reachability is Reachability.ANTIBOT:
                assert domain.name not in retained
            if domain.reachability is Reachability.STABLE:
                assert domain.name in retained

    def test_retained_fraction_near_paper(self):
        config = ScenarioConfig(population=1000, seed=10)
        _, report = AccessibilityFilter(WebEcosystem(config)).run()
        # The paper retained ~78% of the Alexa 1M on average.
        assert 0.65 < report.retained_fraction < 0.90


class TestCrawler:
    def test_unknown_mode_rejected(self):
        config = ScenarioConfig(population=50, seed=1)
        with pytest.raises(CrawlError):
            Crawler(WebEcosystem(config), mode="warp")

    def test_manifest_crawl_populates_store(self, study):
        report = study.crawl_report
        assert report.pages_collected > 0
        assert study.store.total_observations == report.pages_collected
        assert report.filter_report is not None

    def test_full_and_manifest_paths_equivalent(self):
        """The honest HTTP path and the fast path observe identically."""
        config = ScenarioConfig(population=120, seed=31)
        weeks = None

        eco_full = WebEcosystem(config)
        full = Crawler(eco_full, mode="full")
        report_full = full.run(weeks=eco_full.calendar.weeks[:6])

        eco_fast = WebEcosystem(config)
        fast = Crawler(eco_fast, mode="manifest")
        report_fast = fast.run(weeks=eco_fast.calendar.weeks[:6])

        assert report_full.pages_collected == report_fast.pages_collected
        for ordinal in range(6):
            a = full.store.weeks[ordinal]
            b = fast.store.weeks[ordinal]
            assert a.collected == b.collected
            assert dict(a.library_users) == dict(b.library_users)
            assert dict(a.version_counts) == dict(b.version_counts)
            assert dict(a.resource_counts) == dict(b.resource_counts)
            assert a.vulnerable_sites == b.vulnerable_sites
            assert a.wordpress_sites == b.wordpress_sites
            assert a.flash_sites == b.flash_sites
            assert a.sites_external_no_integrity == b.sites_external_no_integrity

    def test_reachable_fast_models_server_errors(self):
        """Regression: 5xx answers are terminal on the fast path too.

        With a nonzero flaky server-error rate, manifest-mode
        reachability must still match the full HTTP path (a 503 is an
        HTTP error the fetcher does not retry).
        """
        from repro.config import AccessibilityConfig
        from repro.crawler.persistence import store_to_dict

        acc = AccessibilityConfig(flaky_server_error_rate=0.4)
        config = ScenarioConfig(population=200, seed=77, accessibility=acc)
        weeks = config.calendar.weeks[:6]

        eco_full = WebEcosystem(config)
        full = Crawler(eco_full, mode="full")
        report_full = full.run(weeks=weeks)

        eco_fast = WebEcosystem(config)
        fast = Crawler(eco_fast, mode="manifest")
        report_fast = fast.run(weeks=weeks)

        # Guard against vacuity: the schedule must actually draw 5xx.
        flaky = [
            d
            for d in eco_full.population
            if d.reachability is Reachability.FLAKY
        ]
        draws = sum(
            1
            for d in flaky
            for w in range(len(weeks))
            for attempt in (0, 1)
            if eco_full.network.failures.outcome(d.name, w, attempt)
            == "server_error"
        )
        assert draws > 0

        assert report_full.pages_collected == report_fast.pages_collected
        assert report_full.fetch_failures == report_fast.fetch_failures
        assert store_to_dict(full.store) == store_to_dict(fast.store)

    def test_profile_cache_counters(self):
        """Hit/miss accounting: one lookup per collected manifest page."""
        from repro.config import IncrementalConfig
        from repro.crawler.persistence import store_to_dict

        config = ScenarioConfig(population=100, seed=7)
        weeks = config.calendar.weeks[:5]

        eco_on = WebEcosystem(config)
        on = Crawler(eco_on, mode="manifest", apply_filter=False)
        report_on = on.run(weeks=weeks)
        assert report_on.cache_hits > 0
        assert (
            report_on.cache_hits + report_on.cache_misses
            == report_on.pages_collected
        )
        assert 0.0 < report_on.cache_hit_rate < 1.0

        eco_off = WebEcosystem(config)
        off = Crawler(
            eco_off,
            mode="manifest",
            apply_filter=False,
            incremental=IncrementalConfig(profile_cache=False),
        )
        report_off = off.run(weeks=weeks)
        assert report_off.cache_hits == 0 and report_off.cache_misses == 0
        assert store_to_dict(on.store) == store_to_dict(off.store)

    def test_manifest_mode_builds_no_engine(self):
        config = ScenarioConfig(population=50, seed=1)
        crawler = Crawler(WebEcosystem(config), mode="manifest")
        assert crawler.engine is None
        assert crawler.cdn_catalog is not None
        full = Crawler(WebEcosystem(config), mode="full")
        assert full.engine is not None
        assert full.cdn_catalog is full.engine.cdn_catalog

    def test_profile_from_manifest_equals_fingerprint(self, engine):
        """Per-page equivalence of the two observation paths."""
        config = ScenarioConfig(population=80, seed=13)
        ecosystem = WebEcosystem(config)
        checked = 0
        for domain in ecosystem.population:
            if domain.reachability in (Reachability.DEAD, Reachability.ANTIBOT):
                continue
            for ordinal in (0, 100, 200):
                manifest = ecosystem.manifest(domain, ordinal)
                fast = profile_from_manifest(manifest, engine.cdn_catalog)
                html = ecosystem.landing_page(domain, ordinal)
                full = engine.fingerprint(html, f"https://{domain.name}/")
                key = lambda p: sorted(
                    (d.library, d.version or "", d.external, d.cdn_host or "",
                     d.has_integrity, d.crossorigin or "")
                    for d in p.libraries
                )
                assert key(fast) == key(full), (domain.name, ordinal)
                assert fast.resource_types == full.resource_types
                assert fast.wordpress_version == full.wordpress_version
                assert len(fast.flash_embeds) == len(full.flash_embeds)
                assert sorted(fast.untrusted_scripts) == sorted(full.untrusted_scripts)
                checked += 1
        assert checked > 100


class TestStoreAggregates:
    def test_weekly_collected_below_population(self, store, small_config):
        for agg in store.ordered_weeks():
            assert agg.collected <= small_config.population

    def test_library_users_bounded_by_collected(self, store):
        for agg in store.ordered_weeks():
            for library, users in agg.library_users.items():
                assert users <= agg.collected, library

    def test_version_counts_sum_at_most_users(self, store):
        for agg in store.ordered_weeks():
            by_library = {}
            for (library, _), count in agg.version_counts.items():
                by_library[library] = by_library.get(library, 0) + count
            for library, total in by_library.items():
                assert total <= agg.library_users.get(library, 0), library

    def test_vuln_hist_consistent_with_vulnerable_sites(self, store):
        from repro.vulndb import MatchMode

        for agg in store.ordered_weeks():
            for mode in (MatchMode.CVE, MatchMode.TVV):
                hist = agg.vuln_count_hist[mode]
                vulnerable = sum(n for count, n in hist.items() if count > 0)
                assert vulnerable == agg.vulnerable_sites[mode]
                assert sum(hist.values()) == agg.collected

    def test_trajectories_compressed(self, store):
        for libs in store.trajectories.values():
            for trajectory in libs.values():
                for (w1, v1), (w2, v2) in zip(trajectory, trajectory[1:]):
                    assert w1 < w2
                    assert v1 != v2

    def test_ingest_unknown_week_rejected(self, study):
        from repro.errors import StoreError
        from repro.fingerprint import PageProfile
        from repro.timeline import Week
        import datetime

        bogus = Week(index=999, ordinal=999, date=datetime.date(2030, 1, 1))
        with pytest.raises(StoreError):
            study.store.ingest(
                study.ecosystem.population[0], bogus, PageProfile(page_host="x")
            )
