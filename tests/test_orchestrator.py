"""Durable multi-run orchestrator: queue, DAG, chaos convergence.

The contract under test (extending the single-run ledger guarantees to
fleets): a fleet of chained jobs killed at any point — including a hard
process abort — and resumed from its queue directory produces final
stores, canonical fleet metrics, and serve-refresh bytes identical to
the uninterrupted fleet, on every execution backend; exhausted-retry
jobs land in the dead-letter queue with their dependents degraded per
policy, never silently dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigError, JobExecutionError, QueueError
from repro.orchestrator import (
    DEAD_LETTER,
    DONE,
    FleetPlan,
    JobQueue,
    Orchestrator,
    status_lines,
)
from repro.orchestrator.queue import BLOCKED, PENDING, SKIPPED
from repro.orchestrator.runner import JobRunner

_POPULATION = 24
_SEED = 7
_CHAOS = "seed=3,jobcrash=0.4,leasestorm=0.5,queuetear=0.5"


def _plan(**overrides) -> FleetPlan:
    defaults = dict(
        population=_POPULATION,
        seed=_SEED,
        ticks=2,
        weeks_per_tick=2,
        max_job_retries=2,
    )
    defaults.update(overrides)
    return FleetPlan.build(**defaults)


def _artifact_digests(root: Path, include_metrics: bool = True) -> dict:
    """sha256 per artifact file under the queue, keyed by relative path.

    ``include_metrics=False`` drops the crawl ``metrics.json``
    documents: those are byte-stable for a *fixed* execution config
    (including across kill/resume) but legitimately describe the
    execution — an unsharded serial crawl and a sharded one record
    different planner/dispatch telemetry.  The dataset artifacts
    (stores, analyses, reports, serve snapshots) must match across
    backends unconditionally.
    """
    digests = {}
    art_root = root / "artifacts"
    for path in sorted(art_root.rglob("*")):
        if not path.is_file() or path.name == "DONE.json":
            continue
        if not include_metrics and path.name == "metrics.json":
            continue
        digests[str(path.relative_to(art_root))] = hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
    return digests


# ----------------------------------------------------------------------
# FleetPlan
# ----------------------------------------------------------------------
class TestFleetPlan:
    def test_dag_layout_per_tick(self):
        plan = _plan(ticks=3)
        assert len(plan.jobs) == 12
        analyses = plan.job("analyses-001")
        assert analyses.hard_deps == ("crawl-001",)
        serve = plan.job("serve-002")
        assert serve.hard_deps == ("crawl-002", "report-002")
        # Ticks chain through soft (profile-warmth) edges only.
        assert plan.job("crawl-002").soft_deps == ("crawl-001",)
        assert plan.job("crawl-000").soft_deps == ()

    def test_round_trip_preserves_digest(self):
        plan = _plan(fault_spec=_CHAOS, degrade_policy="run-stale")
        clone = FleetPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.digest() == plan.digest()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(ticks=0),
            dict(weeks_per_tick=0),
            dict(degrade_policy="retry-forever"),
            dict(max_job_retries=-1),
            dict(lease_seconds=0.0),
        ],
    )
    def test_invalid_plans_are_config_errors(self, overrides):
        with pytest.raises(ConfigError):
            _plan(**overrides)


# ----------------------------------------------------------------------
# JobQueue durability
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_fresh_open_initializes_pending_records(self, tmp_path):
        plan = _plan()
        queue = JobQueue(tmp_path / "q")
        scan = queue.open(plan)
        assert not scan.resumed
        assert set(scan.records) == {spec.job_id for spec in plan.jobs}
        assert all(r.state == PENDING for r in scan.records.values())

    def test_reopen_with_different_plan_is_refused(self, tmp_path):
        root = tmp_path / "q"
        JobQueue(root).open(_plan())
        with pytest.raises(QueueError, match="different fleet"):
            JobQueue(root).open(_plan(ticks=3))

    def test_dead_owner_lease_is_reclaimed_same_attempt(self, tmp_path):
        plan = _plan()
        queue = JobQueue(tmp_path / "q")
        scan = queue.open(plan)
        record = scan.records["crawl-000"]
        record.attempt = 2
        queue.lease(record, "orchestrator-99999", now=5.0)
        queue.mark_running(record, now=5.0)
        # A new orchestrator over the same directory: the old holder is
        # provably dead, the lease is reclaimed, the attempt survives.
        rescan = JobQueue(tmp_path / "q").open(plan, now=80.0)
        assert rescan.reclaimed == 1
        reclaimed = rescan.records["crawl-000"]
        assert reclaimed.state == PENDING
        assert reclaimed.attempt == 2
        assert reclaimed.lease_owner is None

    def test_torn_record_is_quarantined_and_rebuilt(self, tmp_path):
        plan = _plan()
        root = tmp_path / "q"
        queue = JobQueue(root)
        scan = queue.open(plan)
        record = scan.records["crawl-000"]
        record.attempt = 1
        queue.mark_failed(record, "CrawlError: boom", now=1.0)
        # Tear the body mid-write: header survives, body is truncated.
        path = queue.record_path("crawl-000")
        raw = path.read_bytes()
        head, _, body = raw.partition(b"\n")
        path.write_bytes(head + b"\n" + body[: len(body) // 2])

        rescan = JobQueue(root).open(plan)
        assert rescan.quarantined == 1
        rebuilt = rescan.records["crawl-000"]
        # State + attempt come from the surviving header line.
        assert rebuilt.state == "failed"
        assert rebuilt.attempt == 2
        assert rebuilt.error == "(recovered from torn record)"
        assert list((root / "quarantine").iterdir())

    def test_torn_done_record_recovers_from_done_manifest(self, tmp_path):
        plan = _plan()
        root = tmp_path / "q"
        queue = JobQueue(root)
        scan = queue.open(plan)
        record = scan.records["crawl-000"]
        artifact = queue.artifact_dir("crawl-000") / "out.bin"
        artifact.parent.mkdir(parents=True)
        artifact.write_bytes(b"payload")
        queue.write_done_manifest("crawl-000", 0, {"out.bin": artifact})
        queue.mark_done(record, now=3.0)
        path = queue.record_path("crawl-000")
        raw = path.read_bytes()
        head, _, body = raw.partition(b"\n")
        path.write_bytes(head + b"\n" + body[:4])

        rescan = JobQueue(root).open(plan)
        assert rescan.quarantined == 1
        assert rescan.records["crawl-000"].state == DONE

    def test_done_manifest_rejects_tampered_artifacts(self, tmp_path):
        plan = _plan()
        queue = JobQueue(tmp_path / "q")
        queue.open(plan)
        artifact = queue.artifact_dir("crawl-000") / "out.bin"
        artifact.parent.mkdir(parents=True)
        artifact.write_bytes(b"payload")
        queue.write_done_manifest("crawl-000", 0, {"out.bin": artifact})
        assert queue.read_done_manifest("crawl-000") is not None
        artifact.write_bytes(b"tampered!")
        assert queue.read_done_manifest("crawl-000") is None

    def test_dead_letter_writes_operator_copy(self, tmp_path):
        plan = _plan()
        queue = JobQueue(tmp_path / "q")
        scan = queue.open(plan)
        record = scan.records["crawl-000"]
        record.attempt = 3
        record.error = "JobExecutionError: job crawl-000 failed: boom"
        queue.dead_letter(record, now=9.0)
        copy = json.loads(
            (queue.dead_letter_dir / "crawl-000.json").read_text()
        )
        assert copy["attempts"] == 3
        assert "boom" in copy["error"]
        assert queue.read_done_manifest("crawl-000") is None


# ----------------------------------------------------------------------
# Fleet execution (shared fixtures: fleets are the expensive part)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clean_fleet(tmp_path_factory):
    """An uninterrupted fault-free fleet: the reference artifacts."""
    root = tmp_path_factory.mktemp("clean") / "q"
    orchestrator = Orchestrator(root, _plan())
    records = orchestrator.run()
    return root, records, orchestrator


@pytest.fixture(scope="module")
def chaos_fleet(tmp_path_factory):
    """An uninterrupted fleet under the full chaos schedule."""
    root = tmp_path_factory.mktemp("chaos") / "q"
    orchestrator = Orchestrator(root, _plan(fault_spec=_CHAOS))
    records = orchestrator.run()
    return root, records, orchestrator


class TestFleetExecution:
    def test_all_jobs_done_with_artifacts(self, clean_fleet):
        root, records, _ = clean_fleet
        assert all(r.state == DONE for r in records.values())
        for tick in ("000", "001"):
            art = root / "artifacts"
            assert (art / f"crawl-{tick}" / "store.bin").exists()
            assert (art / f"crawl-{tick}" / "metrics.json").exists()
            assert (art / f"analyses-{tick}" / "analyses.json").exists()
            assert (art / f"report-{tick}" / "report.txt").exists()
            assert (art / f"serve-{tick}" / "serve" / "index.json").exists()

    def test_second_tick_reuses_first_ticks_profiles(self, clean_fleet):
        root, _, _ = clean_fleet
        metrics = json.loads(
            (root / "artifacts" / "crawl-001" / "metrics.json").read_text()
        )
        counters = metrics["execution"]["counters"]
        hits = counters.get("profile_store.hits", 0)
        misses = counters.get("profile_store.misses", 0)
        # Tick 1 re-crawls tick 0's window plus new weeks: more than
        # half its profile renders must come from tick 0's generation.
        assert hits / (hits + misses) > 0.5

    def test_rerun_over_finished_queue_is_idempotent(self, clean_fleet):
        root, _, _ = clean_fleet
        before = _artifact_digests(root)
        metrics_before = (root / "fleet-metrics.json").read_bytes()
        records = Orchestrator(root, _plan()).run()
        assert all(r.state == DONE for r in records.values())
        assert _artifact_digests(root) == before
        assert (root / "fleet-metrics.json").read_bytes() == metrics_before

    def test_status_lines_render_without_mutating(self, clean_fleet):
        root, _, _ = clean_fleet
        lines = status_lines(root)
        assert any("crawl-001" in line and "done" in line for line in lines)
        assert lines[-1].startswith("total: 8 jobs")

    def test_chaos_converges_to_clean_artifacts(
        self, clean_fleet, chaos_fleet
    ):
        clean_root, _, _ = clean_fleet
        chaos_root, records, orchestrator = chaos_fleet
        assert all(r.state == DONE for r in records.values())
        # Retries happened (the chaos schedule is not a no-op)...
        counters = orchestrator.instruments.counters
        assert counters.get("orchestrator.job_retries", 0) > 0
        assert counters.get("orchestrator.lease_expiries", 0) > 0
        # ...yet every artifact byte matches the fault-free fleet.
        assert _artifact_digests(chaos_root) == _artifact_digests(clean_root)

    def test_orchestrator_counters_are_recorded(self, chaos_fleet):
        _, _, orchestrator = chaos_fleet
        counters = orchestrator.instruments.counters
        assert counters["orchestrator.jobs_done"] == 8
        assert counters["orchestrator.opens"] >= 1


# ----------------------------------------------------------------------
# Dead-letter + degrade policies
# ----------------------------------------------------------------------
def _failing_execute(fail_job_id):
    original = JobRunner.execute

    def execute(self, spec):
        if spec.job_id == fail_job_id:
            raise JobExecutionError(spec.job_id, "induced permanent failure")
        return original(self, spec)

    return execute


class TestDegradePolicies:
    def _run_with_failure(self, tmp_path, monkeypatch, policy, fail_job):
        monkeypatch.setattr(JobRunner, "execute", _failing_execute(fail_job))
        plan = _plan(degrade_policy=policy, max_job_retries=1)
        orchestrator = Orchestrator(tmp_path / "q", plan)
        return orchestrator.run(), orchestrator

    def test_exhausted_job_dead_letters_with_typed_error(
        self, tmp_path, monkeypatch
    ):
        records, orchestrator = self._run_with_failure(
            tmp_path, monkeypatch, "skip", "crawl-001"
        )
        dead = records["crawl-001"]
        assert dead.state == DEAD_LETTER
        assert dead.attempt == 2  # initial try + 1 retry
        assert "JobExecutionError" in dead.error
        copy = orchestrator.queue.dead_letter_dir / "crawl-001.json"
        assert copy.exists()

    def test_skip_policy_skips_hard_dependents_transitively(
        self, tmp_path, monkeypatch
    ):
        records, _ = self._run_with_failure(
            tmp_path, monkeypatch, "skip", "crawl-001"
        )
        assert records["analyses-001"].state == SKIPPED
        assert records["report-001"].state == SKIPPED
        assert records["serve-001"].state == SKIPPED
        # Tick 0 is untouched; soft deps never degrade.
        assert all(
            records[f"{kind}-000"].state == DONE
            for kind in ("crawl", "analyses", "report", "serve")
        )

    def test_block_policy_blocks_dependents(self, tmp_path, monkeypatch):
        records, _ = self._run_with_failure(
            tmp_path, monkeypatch, "block", "analyses-001"
        )
        assert records["analyses-001"].state == DEAD_LETTER
        assert records["report-001"].state == BLOCKED
        assert records["serve-001"].state == BLOCKED
        assert records["crawl-001"].state == DONE

    def test_run_stale_policy_falls_back_to_earlier_tick(
        self, tmp_path, monkeypatch
    ):
        records, orchestrator = self._run_with_failure(
            tmp_path, monkeypatch, "run-stale", "crawl-001"
        )
        assert records["crawl-001"].state == DEAD_LETTER
        assert records["analyses-001"].state == DONE
        assert records["serve-001"].state == DONE
        # The stale substitution is recorded in the artifact manifests.
        manifest = orchestrator.queue.read_done_manifest("analyses-001")
        assert manifest["source"] == "crawl-000"
        analyses = json.loads(
            (
                orchestrator.queue.artifact_dir("analyses-001")
                / "analyses.json"
            ).read_text()
        )
        assert analyses["source"] == "crawl-000"

    def test_fleet_metrics_account_for_degraded_jobs(
        self, tmp_path, monkeypatch
    ):
        _, orchestrator = self._run_with_failure(
            tmp_path, monkeypatch, "skip", "crawl-001"
        )
        document = json.loads(
            (orchestrator.queue.root / "fleet-metrics.json").read_text()
        )
        assert document["states"]["dead-letter"] == 1
        assert document["states"]["skipped"] == 3
        assert document["states"]["done"] == 4
        assert document["jobs"]["crawl-001"]["attempts"] == 2


# ----------------------------------------------------------------------
# Kill mid-fleet, resume, byte-identical convergence
# ----------------------------------------------------------------------
_FLEET_KILL_SCRIPT = """
import os, sys

limit = int(sys.argv[1])
qdir = sys.argv[2]
backend = sys.argv[3]

import repro.orchestrator.queue as queue_mod

writes = 0
original = queue_mod.JobQueue._write_record

def aborting_write(self, record, allow_tear=True):
    global writes
    original(self, record, allow_tear)
    writes += 1
    if writes >= limit:
        os._exit(137)  # hard abort: no cleanup, no atexit, no flush

queue_mod.JobQueue._write_record = aborting_write

from repro.orchestrator import FleetPlan, Orchestrator

plan = FleetPlan.build(
    population=%d, seed=%d, ticks=2, weeks_per_tick=2,
    fault_spec=%r, backend=backend if backend != "none" else None,
    workers=2 if backend != "none" else None,
)
Orchestrator(qdir, plan).run()
os._exit(0)  # only reached if the abort never fired
""" % (_POPULATION, _SEED, _CHAOS)


def _kill_fleet(root: Path, limit: int, backend: str = "none") -> None:
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _FLEET_KILL_SCRIPT,
            str(limit),
            str(root),
            backend,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 137, proc.stderr


def _strip_crawl_telemetry(jobs: dict) -> dict:
    """Fleet-metrics job entries minus the ``metrics.json`` checksums."""
    stripped = {}
    for job_id_, entry in jobs.items():
        entry = dict(entry)
        if "artifacts" in entry:
            artifacts = dict(entry["artifacts"])
            artifacts.pop("metrics.json", None)
            entry["artifacts"] = artifacts
        stripped[job_id_] = entry
    return stripped


class TestKillMidFleet:
    @pytest.mark.parametrize("limit", [12, 61])
    def test_resumed_fleet_matches_uninterrupted_bytes(
        self, chaos_fleet, tmp_path, limit
    ):
        chaos_root, _, _ = chaos_fleet
        root = tmp_path / f"killed-{limit}"
        _kill_fleet(root, limit)
        # Resume in-process with the identical plan: the queue scan
        # reclaims the dead process's leases and re-executes from the
        # per-job checkpoints.
        records = Orchestrator(root, _plan(fault_spec=_CHAOS)).run()
        assert all(r.state == DONE for r in records.values())
        assert _artifact_digests(root) == _artifact_digests(chaos_root)
        assert (root / "fleet-metrics.json").read_bytes() == (
            chaos_root / "fleet-metrics.json"
        ).read_bytes()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_convergence_holds_across_backends(
        self, chaos_fleet, tmp_path, backend
    ):
        """Kill a sharded-backend fleet mid-run; after resume its
        stores, analyses, reports, and serve-refresh bytes match the
        serial fleet's exactly."""
        chaos_root, _, _ = chaos_fleet
        root = tmp_path / f"killed-{backend}"
        _kill_fleet(root, 30, backend=backend)
        plan = _plan(fault_spec=_CHAOS, backend=backend, workers=2)
        records = Orchestrator(root, plan).run()
        assert all(r.state == DONE for r in records.values())
        assert _artifact_digests(
            root, include_metrics=False
        ) == _artifact_digests(chaos_root, include_metrics=False)
        # The fleet metrics share everything but the plan identity and
        # the crawl telemetry checksums (both cover the backend by
        # design).
        ours = json.loads((root / "fleet-metrics.json").read_text())
        serial = json.loads(
            (chaos_root / "fleet-metrics.json").read_text()
        )
        assert _strip_crawl_telemetry(ours["jobs"]) == (
            _strip_crawl_telemetry(serial["jobs"])
        )
        assert ours["states"] == serial["states"]
        assert ours["retries"] == serial["retries"]
