"""Regression analysis, store persistence, CLI."""

import json

import pytest

from repro.analysis.regressions import Regression, find_regressions
from repro.crawler.persistence import (
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from repro.errors import StoreError
from repro.vulndb import MatchMode


class TestRegressions:
    def test_no_false_positives_on_monotone_trajectories(self, store, matcher):
        result = find_regressions(store, matcher)
        # The generator never downgrades, so any regression here would be
        # a pipeline bug.
        assert result.downgrade_count == 0
        assert result.sites_with_updates > 0

    def test_detects_injected_downgrade(self, store, matcher):
        # Clone the trajectories and inject a rollback past a patch
        # boundary: 3.5.1 -> 1.12.4 re-enters four jQuery CVE ranges.
        import copy

        hacked = copy.deepcopy(store.trajectories)
        hacked[999_999] = {"jquery": [(0, "3.5.1"), (50, "1.12.4")]}

        class _FakeStore:
            trajectories = hacked

        result = find_regressions(_FakeStore(), matcher)
        assert result.downgrade_count == 1
        regression = result.regressions[0]
        assert regression.is_security_regression
        assert "CVE-2020-11022" in regression.reintroduced
        assert result.by_library() == {"jquery": 1}

    def test_downgrade_without_security_impact(self, matcher):
        class _FakeStore:
            trajectories = {1: {"jquery": [(0, "3.6.0"), (10, "3.5.1")]}}

        result = find_regressions(_FakeStore(), matcher)
        assert result.downgrade_count == 1
        # 3.5.1 has no stated-range CVEs, so no security regression.
        assert not result.regressions[0].is_security_regression


class TestPersistence:
    def test_roundtrip(self, store, study, tmp_path):
        path = tmp_path / "store.json"
        save_store(store, path)
        loaded = load_store(path, study.config.calendar)

        assert loaded.total_observations == store.total_observations
        assert loaded.observed_domains == store.observed_domains
        for ordinal in (0, 100, 200):
            a = store.weeks[ordinal]
            b = loaded.weeks[ordinal]
            assert a.collected == b.collected
            assert dict(a.version_counts) == dict(b.version_counts)
            assert dict(a.library_users) == dict(b.library_users)
            assert a.vulnerable_sites == b.vulnerable_sites
            assert dict(a.advisory_sites[MatchMode.TVV]) == dict(
                b.advisory_sites[MatchMode.TVV]
            )
        assert loaded.trajectories == store.trajectories
        assert loaded.flash_spans == store.flash_spans

    def test_analyses_identical_after_reload(self, store, study, tmp_path):
        from repro.analysis.vulnerable import prevalence

        path = tmp_path / "store.json"
        save_store(store, path)
        loaded = load_store(path, study.config.calendar)
        assert (
            prevalence(loaded).average_share == prevalence(store).average_share
        )

    def test_bad_format_rejected(self, study):
        with pytest.raises(StoreError):
            store_from_dict({"format": 999}, study.config.calendar)

    def test_json_serializable(self, store):
        assert json.dumps(store_to_dict(store))


class TestCli:
    def test_scan_vulnerable_file(self, tmp_path, capsys):
        from repro.cli import main

        page = tmp_path / "page.html"
        page.write_text('<script src="/js/jquery-1.12.4.min.js"></script>')
        exit_code = main(["scan", str(page)])
        output = capsys.readouterr().out
        assert exit_code == 1  # findings present
        assert "vulnerable-library" in output

    def test_scan_clean_file(self, tmp_path, capsys):
        from repro.cli import main

        page = tmp_path / "page.html"
        page.write_text("<html><body>nothing here</body></html>")
        assert main(["scan", str(page)]) == 0

    def test_scan_missing_file(self, capsys):
        from repro.cli import main

        assert main(["scan", "/no/such/file.html"]) == 2

    def test_validate(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "understated" in output and "CVE-2020-7656" in output

    def test_run_small(self, tmp_path, capsys):
        from repro.cli import main

        store_path = tmp_path / "s.json"
        code = main(
            [
                "run",
                "--population",
                "60",
                "--seed",
                "5",
                "--save-store",
                str(store_path),
            ]
        )
        assert code == 0
        assert store_path.exists()
        output = capsys.readouterr().out
        assert "Table 1" in output

    def test_run_weeks_and_workers(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--population",
                "60",
                "--seed",
                "5",
                "--weeks",
                "6",
                "--workers",
                "2",
                "--backend",
                "thread",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "x 6 weeks" in captured.err
        assert "thread backend, 2 workers" in captured.err
        assert " in " in captured.err and "s (" in captured.err  # timing

    def test_run_invalid_weeks(self, capsys):
        from repro.cli import main

        assert main(["run", "--population", "60", "--weeks", "0"]) == 2

    def test_run_with_fault_plan_reports_degradation(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--population",
                "60",
                "--seed",
                "5",
                "--weeks",
                "3",
                "--workers",
                "2",
                "--backend",
                "thread",
                "--fault-plan",
                "seed=1,crash=1.0",
                "--max-shard-retries",
                "1",
            ]
        )
        assert code == 0  # a degraded run still completes and reports
        captured = capsys.readouterr()
        assert "fault plan [seed=1,crash=1]" in captured.err
        assert "shards dropped" in captured.err
        assert "simulated backoff" in captured.err
        assert "injected worker crash" in captured.err

    def test_run_rejects_bad_fault_plan_and_retries(self, capsys):
        from repro.cli import main

        assert main(["run", "--fault-plan", "bogus=1"]) == 2
        assert "unknown fault-plan key" in capsys.readouterr().err
        assert main(["run", "--max-shard-retries", "-1"]) == 2
