"""Analyses over the shared crawled study (paper-shape assertions)."""

import pytest

from repro.analysis import (
    cve_accuracy,
    dominant,
    external,
    flash as flash_analysis,
    landscape,
    overview,
    updates,
    vulnerable,
    wordpress,
)
from repro.vulndb import MatchMode, RangeAccuracy


class TestOverview:
    def test_collection_series(self, study):
        series = study.collection_series()
        assert len(series.collected) == 201
        assert series.average > 0

    def test_javascript_dominates(self, study):
        usage = study.resource_usage()
        ranked = usage.ranked()
        assert ranked[0][0] == "javascript"
        assert usage.averages["javascript"] > 0.9
        assert usage.averages["css"] > usage.averages["favicon"]

    def test_flash_is_minor(self, study):
        usage = study.resource_usage()
        assert usage.averages["flash"] < 0.05


class TestLandscape:
    @pytest.fixture(scope="class")
    def result(self, study):
        return study.landscape()

    def test_jquery_is_top(self, result):
        assert result.rows[0].library == "jquery"
        assert 0.5 < result.rows[0].usage_share < 0.8

    def test_usage_ordering_matches_paper_head(self, result):
        top4 = [row.library for row in result.rows[:4]]
        assert top4[0] == "jquery"
        assert set(top4[1:]) >= {"bootstrap", "jquery-migrate"}

    def test_dominant_versions(self, result):
        assert result.row("jquery").dominant_version == "1.12.4"
        assert result.row("jquery-migrate").dominant_version == "1.4.1"
        assert result.row("bootstrap").dominant_version == "3.3.7"

    def test_vulnerability_counts_from_table2(self, result):
        assert result.row("jquery").vulnerability_count == 8
        assert result.row("bootstrap").vulnerability_count == 7
        assert result.row("modernizr").vulnerability_count == 0

    def test_cdn_share_high_for_jquery(self, result):
        assert result.row("jquery").cdn_share_of_external > 0.85

    def test_top_cdns_include_table5_hosts(self, result):
        hosts = [host for host, _ in result.top_cdns["jquery"]]
        assert "ajax.googleapis.com" in hosts

    def test_migrate_dip(self, result):
        before, minimum, after = landscape.migrate_dip(result)
        assert minimum < before * 0.8  # visible dip
        assert after > minimum  # and recovery

    def test_usage_series_length(self, result):
        assert all(len(s) == 201 for s in result.usage_series.values())


class TestVulnerable:
    def test_prevalence_in_paper_band(self, study):
        result = study.prevalence()
        cve = result.average_share[MatchMode.CVE]
        tvv = result.average_share[MatchMode.TVV]
        assert 0.30 < cve < 0.60  # paper: 41.2%
        assert tvv > cve  # TVV reveals more (paper: +2 points)

    def test_gap_grows_over_years(self, study):
        result = study.prevalence()
        gap = {
            year: result.yearly_share[MatchMode.TVV][year]
            - result.yearly_share[MatchMode.CVE][year]
            for year in result.yearly_share[MatchMode.CVE]
        }
        assert gap[2022] > gap[2018]

    def test_cdf_tvv_dominates_cve(self, study):
        cdf = study.vulnerability_cdf()
        assert cdf.mean[MatchMode.TVV] > cdf.mean[MatchMode.CVE]
        # CDF is monotone and ends at 1.
        for mode in (MatchMode.CVE, MatchMode.TVV):
            fractions = [f for _, f in cdf.cdf[mode]]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)

    def test_fraction_at_most(self, study):
        cdf = study.vulnerability_cdf()
        assert cdf.fraction_at_most(MatchMode.CVE, 10_000) == pytest.approx(1.0)
        assert 0 < cdf.fraction_at_most(MatchMode.CVE, 0) < 1


class TestDominant:
    def test_jquery_1124_dominant_and_vulnerable(self, study):
        results = {
            d.library: d for d in study.dominant_versions()
        }
        jquery = results["jquery"]
        assert jquery.version == "1.12.4"
        assert jquery.cve_count == 4  # the paper's four CVEs

    def test_discontinued_still_used(self, study):
        usage = {d.library: d for d in study.discontinued()}
        assert usage["jquery-cookie"].average_share > 0
        assert usage["swfobject"].average_share > 0

    def test_cookie_migration_partial(self, study):
        migration = study.cookie_migration()
        if migration.ever_used_legacy >= 5:
            assert 0.0 < migration.migration_share < 1.0


class TestCveAccuracy:
    def test_table2_counts(self, study):
        summary = study.cve_accuracy_summary()
        counts = summary.counts(cve_only=True)
        assert counts[RangeAccuracy.UNDERSTATED] == 5
        assert counts[RangeAccuracy.OVERSTATED] == 8
        assert summary.incorrect_cves == 13

    def test_affected_series_understated_reveals_more(self, study):
        series = study.affected_series("CVE-2020-7656")
        assert series.average_true > series.average_stated
        assert series.average_undisclosed > 0

    def test_affected_series_overstated_reveals_fewer(self, study):
        series = study.affected_series("CVE-2020-11022")
        assert series.average_true < series.average_stated

    def test_refinement(self, study):
        result = study.refinement()
        assert result.average_share_tvv > result.average_share_cve
        assert result.affected_by_incorrect > 0

    def test_interval_comparison_bands(self, database):
        advisory = database.get("CVE-2020-7656")
        comparison = cve_accuracy.interval_comparison(advisory)
        assert "1.10.1" in comparison.understated_band()
        assert comparison.overstated_band() == ()

    def test_interval_comparison_overstated(self, database):
        advisory = database.get("CVE-2012-6708")
        comparison = cve_accuracy.interval_comparison(advisory)
        assert "1.9.0" in comparison.overstated_band()


class TestUpdates:
    def test_delays_substantial(self, study):
        result = study.update_delays()
        assert result.total_updated_sites > 0
        # The paper: 531.2 days; we assert the order of magnitude.
        assert 150 < result.mean_delay_days < 1200

    def test_censored_sites_exist(self, study):
        # Frozen developers never update: censoring must be visible.
        result = study.update_delays()
        assert result.total_censored_sites > 0

    def test_understatement_penalty_positive(self, study):
        penalty = study.understatement_penalty()
        assert penalty.true_mean_days > penalty.stated_mean_days

    def test_december_2020_wave(self, study):
        wave = updates.december_2020_wave(study.store)
        assert wave["old_drop"] > 0.1  # 1.12.4 falls
        assert wave["new_rise"] > 0.1  # 3.5.1 rises

    def test_version_trends_shapes(self, study):
        trends = study.version_trends("jquery", ["1.12.4", "3.5.1"])
        assert len(trends.series["1.12.4"]) == 201
        # 3.5.1 did not exist before April 2020.
        early = sum(
            c for c, d in zip(trends.series["3.5.1"], trends.dates) if d < "2020-04"
        )
        assert early == 0

    def test_wordpress_jquery_trends(self, study):
        trends = study.wordpress_jquery_trends(["1.12.4", "3.5.1"])
        assert sum(trends.series["1.12.4"]) > 0

    def test_affected_version_trends(self, study, database):
        advisory = database.get("CVE-2020-7656")
        trends = updates.affected_version_trends(study.store, advisory)
        assert trends.series  # some affected versions observed
        for version in trends.series:
            assert advisory.stated_range.contains(version)


class TestFlash:
    def test_usage_decays(self, study):
        usage = study.flash_usage()
        assert usage.start_count > usage.end_count
        assert usage.average_after_eol > 0

    def test_script_access_share_in_band(self, study):
        # The always-share *growth* is asserted at benchmark scale
        # (bench_fig11) and in the flash-model mechanism test; at this
        # tiny population only the average is statistically stable.
        result = study.flash_script_access()
        assert 0.05 < result.average_always_share < 0.50  # paper: 24.7%

    def test_browser_matrix(self):
        assert flash_analysis.flash_supporting_browsers() == ["360 Browser"]

    def test_case_study_rows(self, study):
        rows = study.flash_case_study()
        for row in rows:
            assert row.rank <= 10_000


class TestWordPress:
    def test_usage_share_near_paper(self, study):
        usage = study.wordpress_usage()
        assert 0.18 < usage.average_share < 0.36  # paper: 26.9%

    def test_recent_cves_hit_most_sites(self, study):
        rows = study.wordpress_cves()
        recent, severe = wordpress.recent_vs_severe_exposure(rows)
        assert recent > 0.5  # paper: 97.7%
        assert severe < 0.05  # paper: 0.36%

    def test_swfobject_wordpress_overlap(self, study):
        share = wordpress.library_platform_overlap(study.store, "swfobject")
        assert 0.0 <= share <= 1.0


class TestExternal:
    def test_sri_nearly_absent(self, study):
        result = study.sri()
        assert result.average_missing_share > 0.95  # paper: 99.7%

    def test_crossorigin_anonymous_dominates(self, study):
        result = study.sri()
        shares = result.crossorigin_shares
        if shares:
            top_value = max(shares, key=shares.get)
            assert top_value == "anonymous"

    def test_untrusted_hosting(self, study):
        result = study.untrusted()
        assert result.average_sites >= 0
        assert result.integrity_share <= 0.5
        for row in result.rows:
            assert row.host.endswith((".io", ".com", ".org"))
