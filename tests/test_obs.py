"""Unit tests for the deterministic observability layer (repro.obs).

The integration-level guarantees (canonical byte-identity across
backends, shard sizes, cache settings, and kill/resume) live in
``test_invariants.py``; this file pins the primitives those guarantees
are built from — histogram arithmetic, the exact merge, the payload and
canonical codecs, pickling, and the schema validator.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.errors import ConfigError
from repro.obs import (
    ATTEMPTS_EDGES,
    METRICS_FORMAT,
    SCRIPTS_PER_PAGE_EDGES,
    Histogram,
    Instruments,
    SpanEvent,
    load_schema,
    validate_metrics,
)


class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        hist = Histogram((0, 1, 5))
        for value in (0, 1, 2, 5, 6, 100):
            hist.observe(value)
        # buckets: <=0, <=1, <=5, overflow
        assert hist.counts == [1, 1, 2, 2]
        assert hist.count == 6
        assert hist.total == 114
        assert hist.vmin == 0 and hist.vmax == 100

    def test_merge_is_exact_and_order_free(self):
        rng = random.Random(3)
        values = [rng.randint(0, 40) for _ in range(200)]
        whole = Histogram(SCRIPTS_PER_PAGE_EDGES)
        for v in values:
            whole.observe(v)
        cut = rng.randint(1, len(values) - 1)
        a, b = Histogram(SCRIPTS_PER_PAGE_EDGES), Histogram(SCRIPTS_PER_PAGE_EDGES)
        for v in values[:cut]:
            a.observe(v)
        for v in values[cut:]:
            b.observe(v)
        ab = Histogram(SCRIPTS_PER_PAGE_EDGES)
        ab.merge(b)
        ab.merge(a)
        assert ab == whole

    def test_merge_rejects_mismatched_edges(self):
        with pytest.raises(ConfigError):
            Histogram((0, 1)).merge(Histogram((0, 2)))

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ConfigError):
            Histogram((3, 1, 2))

    def test_dict_round_trip(self):
        hist = Histogram(ATTEMPTS_EDGES)
        for v in (1, 1, 2, 9):
            hist.observe(v)
        assert Histogram.from_dict(hist.to_dict()) == hist

    def test_empty_histogram_serializes_null_min_max(self):
        payload = Histogram((0, 1)).to_dict()
        assert payload["min"] is None and payload["max"] is None


def _filled(backend="serial", pages=3):
    ins = Instruments()
    for _ in range(pages):
        ins.inc("crawl.pages")
        ins.observe("page.scripts", 4, SCRIPTS_PER_PAGE_EDGES)
    ins.event(
        "shard",
        status="ok",
        shard_index=0,
        shard_key="weeks:0-1|domains:a..b|n=2",
        attempt=1,
        fields={"pages": pages},
        backend=backend,
    )
    ins.note("backend", backend)
    ins.add_wall_us("fetch", 1234)
    return ins


class TestInstruments:
    def test_merge_matches_single_stream(self):
        parts = [_filled(pages=n) for n in (1, 2, 5)]
        left = Instruments()
        for p in parts:
            left.merge(p)
        right = Instruments()
        for p in reversed(parts):
            right.merge(p)
        # Equality ignores process; counters/histograms/events agree.
        assert left == right
        assert left.counter("crawl.pages") == 8
        assert left.canonical_json() == right.canonical_json()

    def test_equality_ignores_process_and_backend(self):
        a = _filled(backend="serial")
        b = _filled(backend="process")
        b.note("extra", "diagnostic")
        b.add_wall_us("fetch", 999_999)
        assert a == b
        assert a.canonical_json() == b.canonical_json()

    def test_canonical_json_excludes_backend_and_process(self):
        text = _filled(backend="thread").canonical_json()
        assert "thread" not in text
        assert "process" not in json.loads(text)
        assert "wall.fetch_us" not in text

    def test_payload_round_trip_preserves_everything(self):
        ins = _filled()
        back = Instruments.from_payload(ins.to_payload())
        assert back == ins
        assert back.process == ins.process  # payload keeps diagnostics

    def test_payload_survives_json(self):
        ins = _filled()
        back = Instruments.from_payload(json.loads(json.dumps(ins.to_payload())))
        assert back == ins

    def test_pickle_round_trip(self):
        ins = _filled()
        back = pickle.loads(pickle.dumps(ins))
        assert back == ins and back.process == ins.process

    def test_disabled_gates_detail_but_not_counters(self):
        ins = Instruments(enabled=False)
        ins.inc("crawl.pages", 7)
        ins.observe("page.scripts", 3, SCRIPTS_PER_PAGE_EDGES)
        ins.event(
            "shard", status="ok", shard_index=0, shard_key="k", attempt=0
        )
        with ins.span("plan"):
            pass
        assert ins.counter("crawl.pages") == 7
        assert not ins.histograms and not ins.events and not ins.process

    def test_span_accumulates_wall_and_sim_time(self):
        class FakeClock:
            now = 2.5

        ins = Instruments()
        clock = FakeClock()
        with ins.span("dispatch", clock=clock):
            clock.now = 4.0
        assert ins.process["sim.dispatch_us"] == 1_500_000
        assert ins.process["wall.dispatch_us"] >= 0
        assert ins.wall_seconds("dispatch") == pytest.approx(
            ins.process["wall.dispatch_us"] / 1e6
        )

    def test_span_event_sorting_is_deterministic(self):
        ins = Instruments()
        for index in (2, 0, 1):
            ins.event(
                "shard", status="ok", shard_index=index, shard_key="k", attempt=0
            )
        ordered = [e["shard_index"] for e in ins.to_payload()["spans"]]
        assert ordered == [0, 1, 2]


class TestSchema:
    def test_canonical_document_validates(self):
        document = json.loads(_filled().canonical_json())
        assert validate_metrics(document) == []
        assert document["format"] == METRICS_FORMAT

    def test_violations_are_reported(self):
        document = json.loads(_filled().canonical_json())
        document["dataset"].pop("pages_collected")
        document["execution"]["spans"][0]["status"] = "exploded"
        document["format"] = 99
        failures = validate_metrics(document)
        assert any("pages_collected" in f for f in failures)
        assert any("status" in f for f in failures)
        assert any("format" in f for f in failures)

    def test_schema_rejects_unknown_top_level_keys(self):
        document = json.loads(_filled().canonical_json())
        document["surprise"] = 1
        assert validate_metrics(document)

    def test_checker_cli(self, tmp_path, capsys):
        from repro.obs.check import main

        good = tmp_path / "good.json"
        good.write_text(_filled().canonical_json())
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main([str(bad)]) == 1
        assert main([]) == 2

    def test_load_schema_is_valid_json_document(self):
        schema = load_schema()
        assert schema["properties"]["format"]["enum"] == [METRICS_FORMAT]


class TestSpanEvent:
    def test_dict_round_trip_and_backend_exclusion(self):
        event = SpanEvent(
            name="shard",
            status="dropped",
            shard_index=3,
            shard_key="k",
            attempt=2,
            fields=(("cells", 40), ("error_kind", "InjectedWorkerCrash")),
            backend="process",
        )
        assert SpanEvent.from_dict(event.to_dict()) == event
        assert "backend" not in event.to_dict(include_backend=False)
        twin = SpanEvent.from_dict({**event.to_dict(), "backend": "serial"})
        assert twin == event  # backend is excluded from equality
