"""Property-based invariant harness for the sharded, fault-tolerant crawl.

Fuzzes seeds × shard sizes × backends × fault plans (via the stdlib-only
generators in ``proptest.py``) and asserts the pipeline's standing
contracts *exactly* — byte-identical persisted stores, not statistical
similarity:

* faults off: every backend and shard size produces the bit-identical
  store a serial pass produces;
* faults on: two runs with the same (scenario seed, fault plan) produce
  identical :class:`~repro.crawler.CrawlReport`\\ s — including
  dropped-shard accounting and simulated backoff — and identical stores,
  on every backend;
* ``ObservationStore.merge`` is associative and commutative over random
  contiguous grid partitions;
* the profile cache never changes bytes, even under injected 5xx /
  timeout schedules;
* conservation: every ``weeks × domains`` cell is accounted for as a
  page, a fetch failure, or a dropped cell;
* the canonical metrics document (:mod:`repro.obs`) obeys the same
  tiers: byte-identical across backends for a fixed shard plan (even
  degraded and killed-and-resumed runs), dataset-tier identical across
  shard sizes, worker counts, and cache settings.

All of it runs without wall-clock sleeps (enforced below) on one CPU.
"""

from __future__ import annotations

import time

import pytest

import proptest

from repro import FaultPlan, ScenarioConfig
from repro.config import AccessibilityConfig, ExecutionConfig, IncrementalConfig
from repro.crawler import Crawler, ObservationStore
from repro.crawler.persistence import (
    store_from_dict,
    store_to_bytes,
    store_to_dict,
)
from repro.vulndb import VersionMatcher, default_database
from repro.webgen import WebEcosystem


@pytest.fixture(autouse=True)
def forbid_real_sleeps(monkeypatch):
    """The chaos layer's backoff is simulated; real sleeps are a bug."""

    def _no_sleep(seconds):
        raise AssertionError(
            f"time.sleep({seconds!r}) called during a chaos test - "
            f"backoff must use the simulated clock"
        )

    monkeypatch.setattr(time, "sleep", _no_sleep)


def _fresh_store(config):
    return ObservationStore(config.calendar, VersionMatcher(default_database()))


def _serial_baseline(config, weeks, mode="manifest"):
    ecosystem = WebEcosystem(config)
    store = _fresh_store(config)
    Crawler(ecosystem, store=store, mode=mode, apply_filter=False).crawl_block(
        weeks, list(ecosystem.population)
    )
    return store_to_dict(store)


def _run_crawler(
    config,
    weeks,
    mode="manifest",
    backend="serial",
    workers=1,
    shard_size=0,
    max_retries=2,
    plan=None,
    profile_cache=None,
    checkpoint_dir=None,
    resume=False,
):
    crawler = Crawler(
        WebEcosystem(config),
        mode=mode,
        apply_filter=False,
        execution=ExecutionConfig(
            backend=backend,
            workers=workers,
            shard_size=shard_size,
            max_shard_retries=max_retries,
        ),
        incremental=(
            IncrementalConfig(profile_cache=profile_cache)
            if profile_cache is not None
            else None
        ),
        fault_plan=plan,
        checkpoint_dir=str(checkpoint_dir) if checkpoint_dir else None,
        resume=resume,
    )
    report = crawler.run(weeks=weeks)
    return report, store_to_dict(crawler.store)


class TestBackendIdentityFaultFree:
    """Faults off: execution shape can never change a byte."""

    def test_stores_identical_across_backends_and_shard_sizes(self):
        def prop(rng, seed):
            config = ScenarioConfig(
                population=rng.choice((30, 40, 50)), seed=seed
            )
            n_weeks = rng.randint(3, 5)
            weeks = config.calendar.weeks[:n_weeks]
            baseline = _serial_baseline(config, weeks)
            for backend in ("serial", "thread", "async"):
                workers = rng.randint(2, 3)
                shard_size = rng.choice((0, rng.randint(7, 60)))
                report, store = _run_crawler(
                    config,
                    weeks,
                    backend=backend,
                    workers=workers,
                    shard_size=shard_size,
                )
                assert store == baseline, (
                    f"{backend} x{workers} shard_size={shard_size} diverged"
                )
                assert not report.degraded
                assert report.shard_retries == 0
                assert report.backoff_seconds == 0.0

        proptest.forall(prop)


class TestFaultDeterminism:
    """Same (scenario seed, plan) => the identical degraded run."""

    def test_fault_runs_reproduce_exactly(self):
        def prop(rng, seed):
            config = ScenarioConfig(population=40, seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            plan = proptest.fault_plan(rng, [w.ordinal for w in weeks])
            shard_size = rng.randint(10, 50)
            max_retries = rng.randint(0, 2)

            first = _run_crawler(
                config,
                weeks,
                backend="serial",
                workers=2,
                shard_size=shard_size,
                max_retries=max_retries,
                plan=plan,
            )
            second = _run_crawler(
                config,
                weeks,
                backend="serial",
                workers=2,
                shard_size=shard_size,
                max_retries=max_retries,
                plan=plan,
            )
            report, store = first
            report2, store2 = second
            # CrawlReport equality covers the dropped-shard accounting,
            # retry counts, simulated backoff, and error lines.
            assert report == report2
            assert store == store2

            # The same plan on a different backend (including the
            # cooperative asyncio one, whose retry path bypasses the
            # round-barrier dispatcher) drops the same shards and
            # produces the same bytes.
            other = rng.choice(("thread", "async"))
            report3, store3 = _run_crawler(
                config,
                weeks,
                backend=other,
                workers=3,
                shard_size=shard_size,
                max_retries=max_retries,
                plan=plan,
            )
            assert store3 == store
            assert report3.dropped_shards == report.dropped_shards
            assert report3.dropped_cells == report.dropped_cells
            assert report3.shard_retries == report.shard_retries
            assert report3.backoff_seconds == report.backoff_seconds
            # Error lines match up to the backend name baked into each
            # shard description.
            assert tuple(
                line.replace(f"backend {other}", "backend serial")
                for line in report3.shard_errors
            ) == report.shard_errors

        proptest.forall(prop)

    def test_every_cell_is_accounted_for(self):
        """pages + fetch failures + dropped cells == the full grid."""

        def prop(rng, seed):
            config = ScenarioConfig(population=40, seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            plan = proptest.fault_plan(rng, [w.ordinal for w in weeks])
            report, _ = _run_crawler(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=rng.randint(10, 40),
                max_retries=rng.randint(0, 1),
                plan=plan,
            )
            grid = len(weeks) * config.population
            assert (
                report.pages_collected
                + report.fetch_failures
                + report.dropped_cells
                == grid
            )

        proptest.forall(prop)


class TestMergeAlgebra:
    """merge() is associative and commutative over contiguous partitions."""

    def test_random_grid_partitions_reassemble_exactly(self):
        def prop(rng, seed):
            config = ScenarioConfig(population=40, seed=seed)
            n_weeks = rng.randint(3, 5)
            weeks = config.calendar.weeks[:n_weeks]
            baseline = _serial_baseline(config, weeks)

            splits = proptest.grid_splits(rng, n_weeks, config.population)
            partials = []
            for week_lo, week_hi, domain_lo, domain_hi in splits:
                ecosystem = WebEcosystem(config)
                store = _fresh_store(config)
                Crawler(
                    ecosystem, store=store, mode="manifest", apply_filter=False
                ).crawl_block(
                    weeks[week_lo:week_hi],
                    list(ecosystem.population)[domain_lo:domain_hi],
                )
                partials.append(store_to_dict(store))

            def fold(order):
                acc = _fresh_store(config)
                for i in order:
                    acc.merge(store_from_dict(partials[i], config.calendar))
                return store_to_dict(acc)

            identity = list(range(len(partials)))
            shuffled = identity[:]
            rng.shuffle(shuffled)
            assert fold(identity) == baseline
            assert fold(shuffled) == baseline

        proptest.forall(prop)


class TestCacheIdentityUnderFaults:
    """The profile cache never changes bytes — even mid-surge."""

    def test_cache_on_off_identical_under_5xx_and_timeouts(self):
        def prop(rng, seed):
            accessibility = AccessibilityConfig(flaky_server_error_rate=0.25)
            config = ScenarioConfig(
                population=36, seed=seed, accessibility=accessibility
            )
            weeks = config.calendar.weeks[:4]
            ordinals = [w.ordinal for w in weeks]
            surge_lo = rng.randrange(len(ordinals) - 1)
            plan = FaultPlan(
                seed=rng.randrange(1 << 16),
                surge_weeks=tuple(ordinals[surge_lo : surge_lo + 2]),
                surge_server_error_rate=0.4,
                surge_timeout_rate=0.3,
            )
            mode = rng.choice(("full", "manifest"))
            shard_size = rng.choice((0, rng.randint(20, 60)))
            on = _run_crawler(
                config,
                weeks,
                mode=mode,
                backend="thread",
                workers=2,
                shard_size=shard_size,
                plan=plan,
                profile_cache=True,
            )
            off = _run_crawler(
                config,
                weeks,
                mode=mode,
                backend="thread",
                workers=2,
                shard_size=shard_size,
                plan=plan,
                profile_cache=False,
            )
            assert on[1] == off[1], f"{mode} cache on/off diverged"
            assert on[0].fetch_failures == off[0].fetch_failures
            assert off[0].cache_hits == 0 and off[0].cache_misses == 0

        proptest.forall(prop)

    def test_full_and_manifest_agree_under_surge(self):
        """The surge mirrors the fetcher's semantics in manifest mode."""

        def prop(rng, seed):
            config = ScenarioConfig(population=30, seed=seed)
            weeks = config.calendar.weeks[:3]
            plan = FaultPlan(
                seed=seed,
                surge_weeks=tuple(w.ordinal for w in weeks[1:]),
                surge_connect_failure_rate=0.2,
                surge_timeout_rate=0.3,
                surge_server_error_rate=0.4,
            )
            full = _run_crawler(config, weeks, mode="full", plan=plan)
            manifest = _run_crawler(config, weeks, mode="manifest", plan=plan)
            assert full[1] == manifest[1]
            assert full[0].fetch_failures == manifest[0].fetch_failures

        proptest.forall(prop)


class TestProcessBackendFaultPath:
    """Injected faults must survive the pickle boundary (one small case)."""

    def test_injected_crash_crosses_process_pool(self):
        config = ScenarioConfig(population=20, seed=7)
        weeks = config.calendar.weeks[:2]
        plan = FaultPlan(seed=1, crash_rate=1.0)
        report, store = _run_crawler(
            config,
            weeks,
            backend="process",
            workers=2,
            max_retries=1,
            plan=plan,
        )
        # crash_rate=1.0 crashes every attempt: everything drops, the
        # run still completes, and the accounting is exact.
        assert report.degraded
        assert report.pages_collected == 0 and report.fetch_failures == 0
        assert report.dropped_cells == len(weeks) * config.population
        assert all("injected worker crash" in line for line in report.shard_errors)
        serial_report, serial_store = _run_crawler(
            config,
            weeks,
            backend="serial",
            workers=2,
            max_retries=1,
            plan=plan,
        )
        assert store == serial_store
        assert report.dropped_shards == serial_report.dropped_shards
        assert report.backoff_seconds == serial_report.backoff_seconds


class TestMetricsIdentity:
    """repro.obs determinism tiers, property-tested end to end."""

    def test_canonical_document_identical_across_backends(self):
        """Fixed (plan, cache): every backend exports the same bytes.

        Includes the direct serial path (one shard, no dispatch), which
        must mirror a one-worker dispatched run exactly.
        """

        def prop(rng, seed):
            config = ScenarioConfig(population=rng.choice((30, 40)), seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            workers = rng.randint(1, 3)
            shard_size = rng.choice((0, rng.randint(10, 60)))
            plan = None
            if rng.random() < 0.4:
                plan = proptest.fault_plan(rng, [w.ordinal for w in weeks])
            docs = {}
            for backend in ("serial", "thread", "process", "async"):
                report, _ = _run_crawler(
                    config,
                    weeks,
                    backend=backend,
                    workers=workers,
                    shard_size=shard_size,
                    plan=plan,
                )
                docs[backend] = report.metrics.canonical_json()
                assert "backend" not in docs[backend]
            assert (
                docs["serial"]
                == docs["thread"]
                == docs["process"]
                == docs["async"]
            ), (
                f"workers={workers} shard_size={shard_size} "
                f"plan={'yes' if plan else 'no'}"
            )

        proptest.forall(prop)

    def test_dataset_tier_invariant_under_every_execution_knob(self):
        """Per-page facts never move with sharding, workers, or cache."""
        import json

        def prop(rng, seed):
            config = ScenarioConfig(population=40, seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]

            def dataset(**kwargs):
                report, _ = _run_crawler(config, weeks, **kwargs)
                document = json.loads(report.metrics.canonical_json())
                return json.dumps(document["dataset"], sort_keys=True)

            baseline = dataset()
            for _ in range(2):
                variant = dataset(
                    backend=rng.choice(("serial", "thread")),
                    workers=rng.randint(1, 3),
                    shard_size=rng.choice((0, rng.randint(7, 50))),
                    profile_cache=rng.choice((True, False)),
                )
                assert variant == baseline

        proptest.forall(prop)

    def test_conservation_holds_inside_the_metrics_document(self):
        """The exported counters obey the cell-conservation law too."""
        import json

        def prop(rng, seed):
            config = ScenarioConfig(population=40, seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            plan = proptest.fault_plan(rng, [w.ordinal for w in weeks])
            report, _ = _run_crawler(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=rng.randint(10, 40),
                max_retries=rng.randint(0, 1),
                plan=plan,
            )
            document = json.loads(report.metrics.canonical_json())
            dataset = document["dataset"]
            assert (
                dataset["pages_collected"]
                + dataset["fetch_failures"]
                + dataset["dropped_cells"]
                == len(weeks) * config.population
            )
            # And the document always passes its own schema.
            from repro.obs import validate_metrics

            assert validate_metrics(document) == []

        proptest.forall(prop)

    def test_killed_and_resumed_run_exports_identical_bytes(self, tmp_path):
        """Kill/resume cannot move a single canonical byte.

        The resumed run replays journaled shards and re-executes the
        rest, yet its ``--metrics-out`` document — including the derived
        retry/backoff accounting — is byte-identical to the
        uninterrupted run's.
        """

        def prop(rng, seed):
            config = ScenarioConfig(population=30, seed=seed)
            weeks = config.calendar.weeks[:3]
            plan = None
            if rng.random() < 0.5:
                plan = FaultPlan(seed=seed, crash_rate=0.3)
            shard_size = rng.randint(15, 50)

            uninterrupted = tmp_path / f"whole-{seed}"
            report1, store1 = _run_crawler(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=shard_size,
                plan=plan,
                checkpoint_dir=uninterrupted,
            )

            # "Kill" a second, identical run by damaging its journal:
            # delete a random subset of entries and truncate a survivor.
            killed = tmp_path / f"killed-{seed}"
            _run_crawler(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=shard_size,
                plan=plan,
                checkpoint_dir=killed,
            )
            entries = sorted((killed / "journal").glob("shard-*.wal"))
            for entry in entries:
                if rng.random() < 0.5:
                    entry.unlink()
                elif rng.random() < 0.3:
                    entry.write_bytes(entry.read_bytes()[:40])
            report2, store2 = _run_crawler(
                config,
                weeks,
                backend=rng.choice(("serial", "process", "async")),
                workers=2,
                plan=plan,
                checkpoint_dir=killed,
                resume=True,
            )
            assert store2 == store1
            assert (
                report2.metrics.canonical_json()
                == report1.metrics.canonical_json()
            )
            assert report2.metrics == report1.metrics

        proptest.forall(prop)


class TestBinaryEncodingIdentity:
    """store_to_bytes is canonical: equal stores, equal blobs.

    The dict-based contracts above compare decoded structures; these
    compare the *binary encoding itself* across every execution shape.
    A serial store and a sharded-and-merged one intern symbols in
    different orders, so blob equality proves the canonical remap is
    airtight, not just the logical content.
    """

    def _crawl_store(self, config, weeks, **kwargs):
        crawler = Crawler(
            WebEcosystem(config),
            mode=kwargs.pop("mode", "manifest"),
            apply_filter=False,
            execution=ExecutionConfig(
                backend=kwargs.pop("backend", "serial"),
                workers=kwargs.pop("workers", 1),
                shard_size=kwargs.pop("shard_size", 0),
            ),
            incremental=(
                IncrementalConfig(profile_cache=kwargs["profile_cache"])
                if "profile_cache" in kwargs
                else None
            ),
            checkpoint_dir=kwargs.pop("checkpoint_dir", None),
            resume=kwargs.pop("resume", False),
        )
        crawler.run(weeks=weeks)
        return crawler.store

    def test_blob_identical_across_backends_shards_and_cache(self):
        def prop(rng, seed):
            config = ScenarioConfig(population=rng.choice((30, 40)), seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            baseline = store_to_bytes(self._crawl_store(config, weeks))
            for backend in ("serial", "thread", "process", "async"):
                blob = store_to_bytes(
                    self._crawl_store(
                        config,
                        weeks,
                        backend=backend,
                        workers=2,
                        shard_size=rng.choice((0, rng.randint(10, 50))),
                        profile_cache=rng.choice((True, False)),
                    )
                )
                assert blob == baseline, f"{backend} blob diverged"

        proptest.forall(prop)

    def test_blob_identical_after_kill_and_resume(self, tmp_path):
        def prop(rng, seed):
            config = ScenarioConfig(population=30, seed=seed)
            weeks = config.calendar.weeks[:3]
            shard_size = rng.randint(15, 50)
            baseline = store_to_bytes(
                self._crawl_store(
                    config,
                    weeks,
                    backend="thread",
                    workers=2,
                    shard_size=shard_size,
                )
            )
            root = tmp_path / f"bin-{seed}"
            self._crawl_store(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=shard_size,
                checkpoint_dir=str(root),
            )
            # "Kill": delete a random subset of journal entries, then
            # resume on a random backend.
            for entry in sorted((root / "journal").glob("shard-*.wal")):
                if rng.random() < 0.5:
                    entry.unlink()
            resumed = self._crawl_store(
                config,
                weeks,
                backend=rng.choice(("serial", "thread", "process", "async")),
                workers=2,
                checkpoint_dir=str(root),
                resume=True,
            )
            assert store_to_bytes(resumed) == baseline

        proptest.forall(prop)


class TestTrajectoryMergePartitions:
    """Satellite: trajectory merge is partition-invariant on the bytes.

    Synthetic per-site version histories — mixing unreadable versions
    (``None`` library versions, empty WordPress versions, both of which
    exercise the fallback paths) with real ones — are ingested serially
    and as randomly sized contiguous week shards merged in random
    order.  The binary encodings must match exactly.
    """

    _WP_CHOICES = (None, "", "5.1", "5.2")
    _LIB_CHOICES = (None, "1.12.4", "3.5.1")

    def _profiles(self, rng, n_sites, n_weeks):
        from repro.fingerprint.profile import LibraryDetection, PageProfile

        grid = {}
        for rank in range(1, n_sites + 1):
            for w in range(n_weeks):
                libraries = ()
                if rng.random() < 0.8:
                    libraries = (
                        LibraryDetection(
                            library="jquery",
                            version=rng.choice(self._LIB_CHOICES),
                            source_url="/js/jquery.js",
                            host=None,
                            external=False,
                        ),
                    )
                grid[(rank, w)] = PageProfile(
                    page_host=f"site{rank}.example",
                    libraries=libraries,
                    wordpress_version=rng.choice(self._WP_CHOICES),
                )
        return grid

    def test_week_partitions_merge_to_identical_bytes(self):
        from repro.webgen.domains import Domain, Reachability

        def prop(rng, seed):
            config = ScenarioConfig(population=10, seed=1)
            n_weeks = rng.randint(4, 6)
            n_sites = rng.randint(3, 6)
            weeks = config.calendar.weeks[:n_weeks]
            domains = {
                rank: Domain(
                    rank=rank,
                    name=f"site{rank}.example",
                    reachability=Reachability.STABLE,
                )
                for rank in range(1, n_sites + 1)
            }
            grid = self._profiles(rng, n_sites, n_weeks)

            serial = _fresh_store(config)
            for w, week in enumerate(weeks):
                for rank in range(1, n_sites + 1):
                    serial.ingest(domains[rank], week, grid[(rank, w)])
            baseline = store_to_bytes(serial)

            # Random contiguous week partition, merged in random order.
            cuts = sorted(
                rng.sample(range(1, n_weeks), rng.randint(1, n_weeks - 1))
            )
            spans = list(zip([0] + cuts, cuts + [n_weeks]))
            partials = []
            for lo, hi in spans:
                shard = _fresh_store(config)
                for w in range(lo, hi):
                    for rank in range(1, n_sites + 1):
                        shard.ingest(domains[rank], weeks[w], grid[(rank, w)])
                partials.append(shard)
            rng.shuffle(partials)
            merged = _fresh_store(config)
            for partial in partials:
                merged.merge(partial)
            assert store_to_bytes(merged) == baseline
            assert store_to_dict(merged) == store_to_dict(serial)

        proptest.forall(prop)


class TestLedgerRoundTrip:
    """Checkpoint, damage the journal at random, resume: same bytes.

    The strongest form of the resume contract: for random scenarios,
    shard sizes, and fault plans, a run whose journal then loses a
    random subset of entries (plus one deliberately corrupted survivor)
    resumes — on a random backend — into the byte-identical store the
    uninterrupted run produced, with exact replay/re-execute/quarantine
    accounting.
    """

    def test_damaged_journal_resumes_byte_identical(self, tmp_path):
        def prop(rng, seed):
            config = ScenarioConfig(
                population=rng.choice((30, 40)), seed=seed
            )
            n_weeks = rng.randint(3, 4)
            weeks = config.calendar.weeks[:n_weeks]
            plan = None
            if rng.random() < 0.5:
                plan = FaultPlan(seed=seed, crash_rate=0.3)
            root = tmp_path / f"run-{seed}"
            report1, baseline = _run_crawler(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=rng.randint(20, 60),
                plan=plan,
                checkpoint_dir=root,
            )
            total_shards = report1.shards_reexecuted
            entries = sorted((root / "journal").glob("shard-*.wal"))
            # Dropped shards never journal, so entries <= shards.
            assert len(entries) <= total_shards
            assert report1.bytes_journaled == sum(
                e.stat().st_size for e in entries
            )

            # Damage: delete a random subset, truncate one survivor.
            doomed = [e for e in entries if rng.random() < 0.5]
            survivors = [e for e in entries if e not in doomed]
            corrupted = 0
            if survivors:
                victim = rng.choice(survivors)
                victim.write_bytes(victim.read_bytes()[:40])
                corrupted = 1
            for entry in doomed:
                entry.unlink()

            backend = rng.choice(("serial", "thread", "process", "async"))
            report2, store = _run_crawler(
                config,
                weeks,
                backend=backend,
                workers=2 if backend != "serial" else 1,
                plan=plan,
                checkpoint_dir=root,
                resume=True,
            )
            replayed = len(survivors) - corrupted
            assert store == baseline, (
                f"resume on {backend} diverged (deleted {len(doomed)}, "
                f"corrupted {corrupted})"
            )
            assert report2.shards_replayed == replayed
            assert report2.shards_reexecuted == total_shards - replayed
            assert report2.entries_quarantined == corrupted
            assert report2.pages_collected == report1.pages_collected
            assert report2.fetch_failures == report1.fetch_failures
            assert report2.dropped_cells == report1.dropped_cells

        proptest.forall(prop)


class TestServingIdentity:
    """Served bytes are a pure function of the dataset, not its history.

    The serving layer reads decoded symbols and packed columns straight
    out of the store, so any intern-order or merge-order leak in an
    endpoint would surface here: two stores holding the same dataset but
    built through different execution shapes must answer an identical
    seeded request replay with identical response digests.
    """

    def _serve_digests(self, store, mix, requests=120, **kwargs):
        from repro.serve import LoadGenerator, ServeApp

        app = ServeApp(store, database=default_database(), **kwargs)
        return LoadGenerator(app, mix).run(requests).digests

    def test_served_bytes_identical_across_provenance(self, tmp_path):
        from repro.serve import build_mix

        helper = TestBinaryEncodingIdentity()

        def prop(rng, seed):
            config = ScenarioConfig(population=30, seed=seed)
            weeks = config.calendar.weeks[: rng.randint(3, 4)]
            database = default_database()

            baseline_store = helper._crawl_store(config, weeks)
            mix = build_mix(baseline_store, database, seed=seed)
            baseline = self._serve_digests(baseline_store, mix)

            # Parallel backends intern symbols in worker-dependent order.
            for backend in ("thread", "process", "async"):
                store = helper._crawl_store(
                    config,
                    weeks,
                    backend=backend,
                    workers=2,
                    shard_size=rng.choice((0, rng.randint(10, 50))),
                )
                assert self._serve_digests(store, mix) == baseline, (
                    f"serving a {backend}-built store diverged"
                )

            # A killed-and-resumed run merges journal replays with fresh
            # execution — the messiest provenance the ledger produces.
            root = tmp_path / f"serve-{seed}"
            helper._crawl_store(
                config,
                weeks,
                backend="thread",
                workers=2,
                shard_size=rng.randint(15, 50),
                checkpoint_dir=str(root),
            )
            for entry in sorted((root / "journal").glob("shard-*.wal")):
                if rng.random() < 0.5:
                    entry.unlink()
            resumed = helper._crawl_store(
                config,
                weeks,
                backend=rng.choice(("serial", "thread", "process", "async")),
                workers=2,
                checkpoint_dir=str(root),
                resume=True,
            )
            assert self._serve_digests(resumed, mix) == baseline, (
                "serving a killed-and-resumed store diverged"
            )

        proptest.forall(prop)

    def test_served_bytes_identical_with_cache_off(self):
        from repro.serve import build_mix

        helper = TestBinaryEncodingIdentity()

        def prop(rng, seed):
            config = ScenarioConfig(population=30, seed=seed)
            weeks = config.calendar.weeks[:3]
            store = helper._crawl_store(config, weeks)
            # /metrics reports cache configuration, so exclude it when
            # comparing across cache settings; every data endpoint must
            # still match byte-for-byte.
            mix = build_mix(
                store, default_database(), seed=seed, include_metrics=False
            )
            cached = self._serve_digests(store, mix)
            uncached = self._serve_digests(store, mix, cache_ttl=0.0)
            cold = self._serve_digests(store, mix, precompute=False)
            assert uncached == cached, "disabling the cache changed bytes"
            assert cold == cached, "skipping precompute changed bytes"

        proptest.forall(prop)
