"""HTTP types, DNS, virtual network routing and failure injection."""

import pytest

from repro.errors import ConnectionFailed, DNSError, NetworkError, RequestTimeout
from repro.netsim import (
    FailureModel,
    Headers,
    HttpRequest,
    HttpResponse,
    Resolver,
    StaticHost,
    VirtualNetwork,
    parse_url,
    reason_phrase,
    text_response,
)
from repro.netsim.network import HostCondition
from repro.netsim.server import FunctionHost, not_found


class TestHeaders:
    def test_case_insensitive(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in headers

    def test_last_wins(self):
        headers = Headers()
        headers.set("X-A", "1")
        headers.set("x-a", "2")
        assert headers.get("X-A") == "2"
        assert len(headers) == 1

    def test_copy_isolated(self):
        headers = Headers({"a": "1"})
        clone = headers.copy()
        clone.set("a", "2")
        assert headers.get("a") == "1"


class TestResponses:
    def test_reason_phrases(self):
        assert reason_phrase(200) == "OK"
        assert reason_phrase(404) == "Not Found"
        assert reason_phrase(999) == "Unknown"

    def test_text_response(self):
        response = text_response("hello", status=201)
        assert response.status == 201
        assert response.text == "hello"
        assert response.content_length == 5
        assert response.ok

    def test_redirect_detection(self):
        response = HttpResponse(status=302, headers=Headers({"Location": "/next"}))
        assert response.is_redirect
        assert response.redirect_target() == "/next"

    def test_error_classification(self):
        assert HttpResponse(status=404).is_client_error
        assert HttpResponse(status=503).is_server_error

    def test_content_type(self):
        response = text_response("x", content_type="text/css; charset=utf-8")
        assert response.content_type == "text/css"

    def test_not_found_body_mentions_path(self):
        assert "/missing" in not_found("/missing").text


class TestResolver:
    def test_register_resolve(self):
        resolver = Resolver()
        ip = resolver.register("example.com")
        assert resolver.resolve("EXAMPLE.com") == ip

    def test_deterministic_addresses(self):
        assert Resolver().register("a.com") == Resolver().register("a.com")

    def test_nxdomain(self):
        resolver = Resolver()
        with pytest.raises(DNSError):
            resolver.resolve("missing.example")
        assert resolver.failures == 1

    def test_retire_restore(self):
        resolver = Resolver()
        resolver.register("x.com")
        resolver.retire("x.com")
        assert not resolver.is_registered("x.com")
        with pytest.raises(DNSError):
            resolver.resolve("x.com")
        resolver.restore("x.com")
        assert resolver.resolve("x.com")


class TestStaticHost:
    def test_serves_routes(self):
        host = StaticHost("x.com", {"/": "<html>home</html>"})
        response = host.handle(HttpRequest.get("https://x.com/"))
        assert response.ok and "home" in response.text

    def test_404(self):
        host = StaticHost("x.com", {})
        assert host.handle(HttpRequest.get("https://x.com/nope")).status == 404

    def test_js_content_type(self):
        host = StaticHost("x.com", {"/a.js": "var x=1;"})
        response = host.handle(HttpRequest.get("https://x.com/a.js"))
        assert response.content_type == "application/javascript"


class TestVirtualNetwork:
    def _network(self):
        network = VirtualNetwork()
        network.attach("site.example", StaticHost("site.example", {"/": "<html>hello world</html>"}))
        return network

    def test_roundtrip(self):
        network = self._network()
        response = network.send(HttpRequest.get("https://site.example/"))
        assert response.ok
        assert network.stats.requests == 1
        assert network.stats.bytes_received == response.content_length

    def test_unknown_host_dns_error(self):
        network = self._network()
        with pytest.raises(DNSError):
            network.send(HttpRequest.get("https://ghost.example/"))
        assert network.stats.dns_failures == 1

    def test_detach_retires(self):
        network = self._network()
        network.detach("site.example")
        with pytest.raises(DNSError):
            network.send(HttpRequest.get("https://site.example/"))

    def test_failure_injection_deterministic(self):
        model = FailureModel(seed=7)
        model.set_condition("flaky.example", HostCondition(connect_failure_rate=0.5))
        outcomes_a = [model.outcome("flaky.example", 0, i) for i in range(50)]
        clone = FailureModel(seed=7)
        clone.set_condition("flaky.example", HostCondition(connect_failure_rate=0.5))
        outcomes_b = [clone.outcome("flaky.example", 0, i) for i in range(50)]
        assert outcomes_a == outcomes_b
        assert "connect_failure" in outcomes_a
        assert "ok" in outcomes_a

    def test_failure_rate_validated(self):
        with pytest.raises(NetworkError):
            HostCondition(connect_failure_rate=1.5)

    def test_connect_failure_raised(self):
        network = self._network()
        network.failures.set_condition(
            "site.example", HostCondition(connect_failure_rate=1.0)
        )
        with pytest.raises(ConnectionFailed):
            network.send(HttpRequest.get("https://site.example/"))

    def test_timeout_raised(self):
        network = self._network()
        network.failures.set_condition("site.example", HostCondition(timeout_rate=1.0))
        with pytest.raises(RequestTimeout):
            network.send(HttpRequest.get("https://site.example/"))

    def test_server_error_injected(self):
        network = self._network()
        network.failures.set_condition(
            "site.example", HostCondition(server_error_rate=1.0)
        )
        response = network.send(HttpRequest.get("https://site.example/"))
        assert response.status == 503

    def test_reset_ordinals_restores_schedule(self):
        network = self._network()
        network.failures.set_condition(
            "site.example", HostCondition(connect_failure_rate=0.5)
        )
        def outcomes():
            results = []
            for _ in range(10):
                try:
                    network.send(HttpRequest.get("https://site.example/"))
                    results.append("ok")
                except ConnectionFailed:
                    results.append("fail")
            return results

        first = outcomes()
        network.reset_ordinals()
        assert outcomes() == first

    def test_nothing_listening(self):
        network = self._network()
        network.resolver.register("dangling.example")
        with pytest.raises(ConnectionFailed):
            network.send(HttpRequest.get("https://dangling.example/"))

    def test_function_host(self):
        network = VirtualNetwork()
        network.attach(
            "fn.example",
            FunctionHost("fn.example", lambda req: text_response(req.url.path)),
        )
        response = network.send(HttpRequest.get("https://fn.example/echo"))
        assert response.text == "/echo"
