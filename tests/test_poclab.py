"""PoC lab: DOM, behaviour models, and the validation sweep."""

import pytest

from repro.errors import EnvironmentSetupError, PocError
from repro.poclab import (
    Document,
    Environment,
    EnvironmentFactory,
    ValidationLab,
    default_pocs,
    poc_for,
)
from repro.vulndb import RangeAccuracy, classify_accuracy, default_database


class TestDocument:
    def test_alert_recorded(self):
        dom = Document()
        dom.execute_script('alert("pwned")')
        assert dom.alerts == ["pwned"]
        assert dom.exploited

    def test_innerhtml_scripts_inert(self):
        dom = Document()
        dom.parse_html("<script>alert('x')</script>", execute_scripts=False)
        assert not dom.exploited

    def test_script_execution_opt_in(self):
        dom = Document()
        dom.parse_html("<script>alert('x')</script>", execute_scripts=True)
        assert dom.exploited

    def test_img_onerror_fires(self):
        dom = Document()
        dom.parse_html('<img src=x onerror=alert("y")>')
        assert dom.alerts == ["y"]

    def test_handlers_suppressible(self):
        dom = Document()
        dom.parse_html('<img src=x onerror=alert("y")>', fire_handlers=False)
        assert not dom.exploited


class TestModels:
    def test_jquery_load_gate(self):
        vulnerable = Environment("jquery", "3.5.1")
        vulnerable.model.load("<script>alert('x')</script>")
        assert vulnerable.exploited

        fixed = Environment("jquery", "3.6.0")
        fixed.model.load("<script>alert('x')</script>")
        assert not fixed.exploited

    def test_jquery_selector_ambiguity_gate(self):
        old = Environment("jquery", "1.8.3")
        old.model.construct('#x <img src=x onerror=alert("a")>')
        assert old.exploited

        fixed = Environment("jquery", "1.9.0")
        fixed.model.construct('#x <img src=x onerror=alert("a")>')
        assert not fixed.exploited

    def test_jquery_explicit_html_always_parses(self):
        env = Environment("jquery", "3.6.0")
        env.model.construct('<img src=x onerror=alert("a")>')
        assert env.exploited  # explicit HTML input is the caller's choice

    def test_bootstrap_branch_gates(self):
        for version, expected in (("3.3.7", True), ("3.4.1", False),
                                  ("4.2.1", True), ("4.3.1", False)):
            env = Environment("bootstrap", version)
            env.model.tooltip_template('<img src=x onerror=alert("b")>')
            assert env.exploited is expected, version

    def test_moment_redos_gate(self):
        slow = Environment("moment", "2.10.6")
        fast = Environment("moment", "2.19.3")
        payload = "-" * 2048
        assert slow.model.parse_duration_steps(payload) > len(payload) ** 1.5
        assert fast.model.parse_duration_steps(payload) == len(payload)

    def test_prototype_never_patched(self):
        for version in ("1.5.0", "1.7.3"):
            env = Environment("prototype", version)
            assert env.model.strip_tags_steps("-" * 2048) == 2048 * 2048

    def test_unknown_library(self):
        with pytest.raises(EnvironmentSetupError):
            Environment("left-pad", "1.0.0")


class TestPocPrograms:
    def test_poc_lookup(self):
        assert poc_for("cve-2020-7656").library == "jquery"
        with pytest.raises(PocError):
            poc_for("CVE-0000-0000")

    def test_poc_rejects_wrong_environment(self):
        poc = poc_for("CVE-2020-7656")
        with pytest.raises(PocError):
            poc.execute(Environment("bootstrap", "3.3.7"))

    def test_every_poc_fires_somewhere_and_not_everywhere(self):
        """Each PoC must discriminate between versions (except the
        never-patched Prototype ReDoS, which fires everywhere)."""
        factory = EnvironmentFactory()
        for poc in default_pocs():
            outcomes = {
                poc.execute(env) for env in factory.sweep(poc.library)
            }
            if poc.advisory_id == "CVE-2020-27511":
                assert outcomes == {True}
            else:
                assert outcomes == {True, False}, poc.advisory_id


class TestValidationLab:
    @pytest.fixture(scope="class")
    def lab(self):
        return ValidationLab(default_database())

    def test_sweep_discovers_tvv_for_7656(self, lab):
        discovered = lab.sweep("CVE-2020-7656")
        assert "1.10.1" in discovered.vulnerable_versions  # beyond stated <1.9.0
        assert "3.5.1" in discovered.vulnerable_versions
        assert "3.6.0" in discovered.safe_versions

    def test_sweep_matches_recorded_tvv_ranges(self, lab):
        """The lab's discoveries reproduce Table 2's TVVs exactly."""
        from repro.semver import builtin_catalogs

        catalogs = builtin_catalogs()
        database = default_database()
        for advisory_id in lab.available_pocs():
            advisory = database.get(advisory_id)
            discovered = lab.sweep(advisory_id)
            catalog = catalogs[advisory.library]
            expected = {
                str(r.version)
                for r in catalog.in_range(advisory.effective_range)
            }
            assert set(discovered.vulnerable_versions) == expected, advisory_id

    def test_classification_agrees_with_recorded(self, lab):
        for verdict in lab.classify_all():
            assert verdict.verdict == classify_accuracy(verdict.advisory), (
                verdict.advisory.identifier
            )

    def test_summary_counts_match_paper(self, lab):
        summary = lab.summary()
        assert summary[RangeAccuracy.UNDERSTATED] == 6  # 5 CVEs + migrate
        assert summary[RangeAccuracy.OVERSTATED] == 8

    def test_discovered_range_as_range_set(self, lab):
        discovered = lab.sweep("CVE-2016-7103")
        range_set = discovered.as_range_set()
        assert range_set.contains("1.12.1")
        assert not range_set.contains("1.13.0")
