"""HTML tag scanner."""

from repro.fingerprint import Tag, scan_tags
from repro.fingerprint.html_scan import inline_scripts, object_groups


class TestScanTags:
    def test_basic_script(self):
        tags = scan_tags('<script src="/a.js"></script>')
        assert tags[0].name == "script"
        assert tags[0].get("src") == "/a.js"

    def test_attribute_quoting_styles(self):
        tags = scan_tags("<script src='/a.js' async data-x=plain></script>")
        tag = tags[0]
        assert tag.get("src") == "/a.js"
        assert tag.has("async")
        assert tag.get("data-x") == "plain"

    def test_case_insensitive_names(self):
        tags = scan_tags('<SCRIPT SRC="/a.js"></SCRIPT>')
        assert tags[0].name == "script"
        assert tags[0].get("src") == "/a.js"

    def test_self_closing(self):
        tags = scan_tags('<link rel="icon" href="/f.ico"/>')
        assert tags[0].get("href") == "/f.ico"

    def test_comments_stripped(self):
        tags = scan_tags('<!-- <script src="/old.js"></script> -->')
        assert tags == []

    def test_comments_kept_when_disabled(self):
        tags = scan_tags(
            '<!-- <script src="/old.js"></script> -->', strip_comments=False
        )
        assert len(tags) == 1

    def test_irrelevant_tags_ignored(self):
        tags = scan_tags("<div><p>hello</p><span>x</span></div>")
        assert tags == []

    def test_positions_increase(self):
        tags = scan_tags('<script src="/a.js"></script><img src="/b.png">')
        assert tags[0].position < tags[1].position


class TestInlineScripts:
    def test_bodies_extracted(self):
        bodies = inline_scripts("<script>var a=1;</script><script>var b=2;</script>")
        assert bodies == ["var a=1;", "var b=2;"]

    def test_empty_bodies_skipped(self):
        assert inline_scripts('<script src="/a.js"></script>') == []

    def test_multiline(self):
        assert inline_scripts("<script>\nvar a=1;\n</script>") == ["var a=1;"]


class TestObjectGroups:
    def test_params_grouped_with_object(self):
        html = (
            '<object width="1"><param name="movie" value="/a.swf">'
            '<param name="AllowScriptAccess" value="always"></object>'
        )
        groups = object_groups(html)
        assert len(groups) == 1
        obj, params = groups[0]
        assert obj.get("width") == "1"
        assert [p.get("name") for p in params] == ["movie", "AllowScriptAccess"]

    def test_two_objects_split(self):
        html = (
            '<object><param name="movie" value="/a.swf"></object>'
            '<object><param name="movie" value="/b.swf"></object>'
        )
        groups = object_groups(html)
        assert len(groups) == 2
        assert groups[0][1][0].get("value") == "/a.swf"
        assert groups[1][1][0].get("value") == "/b.swf"

    def test_param_after_close_not_attached(self):
        html = '<object></object><param name="movie" value="/x.swf">'
        groups = object_groups(html)
        assert len(groups) == 1
        assert groups[0][1] == []
