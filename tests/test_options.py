"""The typed run-options API and its single-declaration CLI derivation.

Pins the PR-5 redesign contracts:

* ``Study(options=RunOptions(...))`` and the legacy flat keyword
  arguments configure the identical study (same resolved config, same
  fault plan);
* legacy kwargs still work but emit exactly one
  :class:`DeprecationWarning` per construction; mixing both forms is a
  :class:`~repro.errors.ConfigError`;
* the CLI flags are derived from the option dataclasses' field
  metadata, so the two surfaces cannot drift — asserted structurally
  (every declared flag exists on the parser) and behaviourally (parsed
  flags convert into the same ``RunOptions`` the API builds).
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import (
    DurabilityOptions,
    ExecutionOptions,
    FaultPlan,
    ObservabilityOptions,
    ResilienceOptions,
    RunOptions,
    ScenarioConfig,
    Study,
)
from repro.errors import ConfigError
from repro.options import (
    OPTION_GROUPS,
    _flag_dest,
    options_from_namespace,
)


CONFIG = ScenarioConfig(population=30, seed=9)


class TestEquivalence:
    def test_legacy_kwargs_and_options_configure_identically(self, tmp_path):
        plan = FaultPlan(seed=3, crash_rate=0.2)
        kwargs = dict(
            workers=3,
            backend="thread",
            shard_size=40,
            profile_cache=False,
            max_shard_retries=1,
            on_shard_failure="degrade",
            fault_plan=plan,
            checkpoint_dir=str(tmp_path / "ledger"),
        )
        with pytest.warns(DeprecationWarning):
            legacy = Study(CONFIG, **kwargs)
        modern = Study(
            CONFIG,
            options=RunOptions(
                execution=ExecutionOptions(
                    workers=3, backend="thread", shard_size=40,
                    profile_cache=False,
                ),
                resilience=ResilienceOptions(
                    fault_plan=plan, max_shard_retries=1,
                    on_shard_failure="degrade",
                ),
                durability=DurabilityOptions(
                    checkpoint_dir=str(tmp_path / "ledger")
                ),
            ),
        )
        assert legacy.config == modern.config
        assert legacy.fault_plan == modern.fault_plan
        assert legacy.options == modern.options

    def test_legacy_kwargs_warn_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Study(CONFIG, workers=2, backend="serial", shard_size=10)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "options=RunOptions" in str(deprecations[0].message)

    def test_options_form_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            Study(CONFIG, options=RunOptions())
            Study(CONFIG)
            # None-valued legacy kwargs are no-ops, not deprecated uses.
            Study(CONFIG, workers=None, resume=False)
        assert caught == []

    def test_mixing_forms_is_an_error(self):
        with pytest.raises(ConfigError, match="not both"):
            Study(CONFIG, options=RunOptions(), workers=2)

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="wrokers"):
            Study(CONFIG, wrokers=2)

    def test_run_options_from_kwargs_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown run option"):
            RunOptions.from_kwargs(wrokers=2)


class TestValidation:
    def test_execution_validation_matches_config_layer(self):
        with pytest.raises(ConfigError, match="workers must be >= 1"):
            ExecutionOptions(workers=0)
        with pytest.raises(ConfigError, match="shard_size must be >= 0"):
            ExecutionOptions(shard_size=-1)
        with pytest.raises(ConfigError, match="unknown execution backend"):
            ExecutionOptions(backend="quantum")

    def test_resilience_validation(self):
        with pytest.raises(ConfigError, match="max_shard_retries"):
            ResilienceOptions(max_shard_retries=-1)
        with pytest.raises(ConfigError):
            ResilienceOptions(fault_plan="bogus=1")

    def test_fault_plan_spec_string_is_parsed(self):
        options = ResilienceOptions(fault_plan="seed=5,crash=0.25")
        assert options.fault_plan == FaultPlan.from_spec("seed=5,crash=0.25")

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigError, match="checkpoint"):
            DurabilityOptions(resume=True)

    def test_apply_to_overrides_only_what_is_set(self):
        base = ScenarioConfig(population=30, seed=9)
        applied = RunOptions(
            observability=ObservabilityOptions(metrics=False)
        ).apply_to(base)
        assert applied.observability.metrics is False
        assert applied.execution == base.execution
        assert applied.incremental == base.incremental
        assert RunOptions().apply_to(base) == base


class TestCliDerivation:
    def _run_parser(self):
        from repro.cli import build_parser

        parser = build_parser()
        # The 'run' subparser is where the option groups are attached.
        subparsers = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
            and "run" in action.choices
        )
        return subparsers.choices["run"]

    def test_every_declared_flag_exists_on_the_run_parser(self):
        run = self._run_parser()
        flags = {
            flag for action in run._actions for flag in action.option_strings
        }
        for _, option_cls, _, _ in OPTION_GROUPS:
            for field in dataclasses.fields(option_cls):
                spec = field.metadata.get("cli")
                if spec is None:
                    continue
                assert spec["flag"] in flags, (
                    f"{option_cls.__name__}.{field.name} declares "
                    f"{spec['flag']} but the run parser lacks it"
                )

    def test_every_study_legacy_kwarg_is_a_declared_option_field(self):
        declared = {
            field.name
            for _, option_cls, _, _ in OPTION_GROUPS
            for field in dataclasses.fields(option_cls)
        }
        assert set(Study._LEGACY_OPTION_NAMES) <= declared

    def test_parsed_flags_convert_into_the_api_options(self, tmp_path):
        run = self._run_parser()
        namespace = run.parse_args(
            [
                "--workers", "3",
                "--backend", "thread",
                "--shard-size", "40",
                "--no-profile-cache",
                "--fault-plan", "seed=3,crash=0.2",
                "--max-shard-retries", "1",
                "--on-shard-failure", "degrade",
                "--checkpoint-dir", str(tmp_path / "ledger"),
                "--no-metrics",
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        )
        options = options_from_namespace(namespace)
        assert options == RunOptions(
            execution=ExecutionOptions(
                workers=3, backend="thread", shard_size=40,
                profile_cache=False,
            ),
            resilience=ResilienceOptions(
                fault_plan=FaultPlan.from_spec("seed=3,crash=0.2"),
                max_shard_retries=1,
                on_shard_failure="degrade",
            ),
            durability=DurabilityOptions(
                checkpoint_dir=str(tmp_path / "ledger")
            ),
            observability=ObservabilityOptions(
                metrics=False, metrics_out=str(tmp_path / "m.json")
            ),
        )

    def test_defaults_convert_to_inherit_everything(self):
        run = self._run_parser()
        assert options_from_namespace(run.parse_args([])) == RunOptions()

    def test_flag_dest_matches_argparse(self):
        assert _flag_dest("--no-profile-cache") == "no_profile_cache"
        assert _flag_dest("--metrics-out") == "metrics_out"

    def test_grouped_help_lists_all_four_groups(self):
        help_text = self._run_parser().format_help()
        for _, _, title, _ in OPTION_GROUPS:
            assert title in help_text

    def test_bad_flag_values_exit_2_via_cli(self, capsys):
        from repro.cli import main

        assert main(["run", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err
        assert main(["run", "--workers", "0"]) == 2
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_bad_plan_from_exits_2_via_cli(self, capsys, tmp_path):
        # plan_from is only validated once the run opens the file, so
        # the error surfaces from study.run — still exit 2, one line.
        from repro.cli import main

        missing = tmp_path / "missing.json"
        assert main(
            ["run", "--population", "60", "--weeks", "1",
             "--plan-from", str(missing)]
        ) == 2
        assert "cannot read plan-from metrics" in capsys.readouterr().err
