"""CLI exit-code contracts across ``repro``, ``repro serve``,
``repro orchestrate``.

The contract: bad flags and bad configuration exit 2 with a one-line
typed ``error:`` message on stderr — never a traceback; degraded but
*complete* work (dead-lettered jobs with dependents degraded per
policy) exits 0 with a stderr report, because nothing was dropped.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.errors import ConfigError, JobExecutionError
from repro.runtime.faults import FaultPlan


def _cli(*argv: str) -> subprocess.CompletedProcess:
    """Run the real console entry in a subprocess (traceback checks
    need the interpreter's actual stderr, not capsys)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


# ----------------------------------------------------------------------
# Bad flags: argparse's exit-2 surface
# ----------------------------------------------------------------------
class TestBadFlags:
    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--no-such-flag"],
            ["run", "--backend", "quantum"],
            ["serve", "--port", "not-a-port"],
            ["orchestrate", "explode", "--queue-dir", "/tmp/x"],
            ["orchestrate", "run", "--degrade-policy", "shrug"],
            ["no-such-command"],
        ],
    )
    def test_unknown_flags_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_out_of_range_serve_options_exit_2(self, capsys):
        assert main(["serve", "--store", "x.bin", "--port", "99999"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_orchestrate_requires_queue_dir(self, capsys):
        assert main(["orchestrate", "run"]) == 2
        assert "--queue-dir" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Satellite: FaultPlan.from_spec error paths are typed and name tokens
# ----------------------------------------------------------------------
class TestFaultPlanSpecErrors:
    @pytest.mark.parametrize(
        "spec, needle",
        [
            ("bogus=1", "unknown fault-plan key"),
            ("crash", "expected key=value"),
            ("crash=lots", "in token 'crash=lots'"),
            ("crash=2", "probability in 0..1"),
            ("seed=x", "token 'seed=x'"),
            ("weeks=5-2", "empty week range"),
            ("weeks=a-b", "in token 'weeks=a-b'"),
            ("crash=0.1,crash=0.2", "duplicate fault-plan key"),
            ("jobcrash=9", "probability in 0..1"),
            ("leasestorm=-1", "probability in 0..1"),
            ("queuetear=nope", "in token 'queuetear=nope'"),
        ],
    )
    def test_malformed_specs_raise_typed_config_errors(self, spec, needle):
        with pytest.raises(ConfigError, match="fault-plan") as excinfo:
            FaultPlan.from_spec(spec)
        assert needle in str(excinfo.value)

    def test_cli_reports_bad_spec_without_traceback(self):
        proc = _cli("run", "--fault-plan", "crash=lots")
        assert proc.returncode == 2
        assert "error:" in proc.stderr
        assert "crash=lots" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_round_trip_describe_to_from_spec(self):
        plan = FaultPlan(
            seed=3,
            job_crash_rate=0.4,
            lease_expiry_rate=0.5,
            queue_tear_rate=0.25,
        )
        assert FaultPlan.from_spec(plan.describe()) == plan


# ----------------------------------------------------------------------
# Satellite: --plan-from error paths exit 2, one line, no traceback
# ----------------------------------------------------------------------
class TestPlanFromErrors:
    def _run(self, metrics_path: str) -> subprocess.CompletedProcess:
        return _cli(
            "run",
            "--population", "30",
            "--weeks", "2",
            "--workers", "2",
            "--plan-from", metrics_path,
        )

    def _assert_clean_failure(self, proc, needle: str) -> None:
        assert proc.returncode == 2
        error_lines = [
            line for line in proc.stderr.splitlines()
            if line.startswith("error:")
        ]
        assert len(error_lines) == 1, proc.stderr
        assert needle in error_lines[0]
        assert "Traceback" not in proc.stderr
        assert "Traceback" not in proc.stdout

    def test_missing_metrics_file(self, tmp_path):
        proc = self._run(str(tmp_path / "nope.json"))
        self._assert_clean_failure(proc, "cannot read plan-from metrics")

    def test_unreadable_metrics_file(self, tmp_path):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json!")
        proc = self._run(str(bad))
        self._assert_clean_failure(proc, "not a JSON document")

    def test_schema_invalid_metrics_file(self, tmp_path):
        bad = tmp_path / "wrong-format.json"
        bad.write_text(json.dumps({"format": 999}))
        proc = self._run(str(bad))
        self._assert_clean_failure(proc, "format")


# ----------------------------------------------------------------------
# Orchestrate: run/status contract
# ----------------------------------------------------------------------
class TestOrchestrateContract:
    _FLAGS = [
        "--population", "24",
        "--ticks", "2",
        "--weeks-per-tick", "1",
        "--max-job-retries", "0",
    ]

    def test_status_on_missing_queue_exits_2(self, tmp_path, capsys):
        code = main(
            ["orchestrate", "status", "--queue-dir", str(tmp_path / "no")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_mismatch_on_resume_exits_2(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        argv = ["orchestrate", "run", "--queue-dir", queue_dir, *self._FLAGS]
        assert main(argv) == 0
        capsys.readouterr()
        assert main([*argv, "--seed", "99"]) == 2
        assert "different fleet" in capsys.readouterr().err

    def test_degraded_but_complete_exits_0_with_stderr_report(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.orchestrator.runner import JobRunner

        original = JobRunner.execute

        def failing(self, spec):
            if spec.job_id == "crawl-001":
                raise JobExecutionError(spec.job_id, "induced failure")
            return original(self, spec)

        monkeypatch.setattr(JobRunner, "execute", failing)
        code = main(
            [
                "orchestrate", "run",
                "--queue-dir", str(tmp_path / "q"),
                *self._FLAGS,
            ]
        )
        captured = capsys.readouterr()
        assert code == 0  # every job terminal, nothing dropped
        assert "dead-letter crawl-001" in captured.err
        assert "skipped" in captured.err

    def test_status_after_run_reports_every_job(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        assert main(
            ["orchestrate", "run", "--queue-dir", queue_dir, *self._FLAGS]
        ) == 0
        capsys.readouterr()
        assert main(["orchestrate", "status", "--queue-dir", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "crawl-000" in out and "serve-001" in out
        assert "8 done" in out


# ----------------------------------------------------------------------
# Serve: graceful shutdown contract
# ----------------------------------------------------------------------
class TestServeShutdown:
    def test_sigterm_drains_and_exits_0(self, tmp_path):
        import signal
        import time

        from repro import ScenarioConfig, Study
        from repro.crawler.persistence import save_store

        study = Study(ScenarioConfig(population=20, seed=5))
        study.run(weeks=study.config.calendar.weeks[:2])
        store_path = tmp_path / "store.bin"
        save_store(study.store, store_path)

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--store", str(store_path), "--port", "0",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # Wait for the startup banner so the serve loop is live.
            deadline = time.monotonic() + 60
            banner = ""
            while "listening on" not in banner:
                assert time.monotonic() < deadline
                banner += proc.stderr.readline()
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()
        assert code == 0
        remainder = proc.stderr.read()
        assert "SIGTERM received, draining" in remainder
