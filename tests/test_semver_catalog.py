"""Release catalogs."""

import datetime

import pytest

from repro.errors import CatalogError
from repro.semver import (
    ReleaseCatalog,
    Version,
    builtin_catalogs,
    catalog_for,
    parse_range,
)


def _d(text):
    return datetime.date.fromisoformat(text)


class TestReleaseCatalog:
    def test_sorted_by_version(self):
        catalog = ReleaseCatalog(
            "x", [("2.0", _d("2020-01-01")), ("1.0", _d("2019-01-01"))]
        )
        assert [str(v) for v in catalog.versions] == ["1.0", "2.0"]

    def test_duplicate_rejected(self):
        with pytest.raises(CatalogError):
            ReleaseCatalog("x", [("1.0", _d("2019-01-01")), ("1.0.0", _d("2019-02-01"))])

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            ReleaseCatalog("x", [])

    def test_get_and_date_of(self):
        catalog = catalog_for("jquery")
        assert catalog.date_of("3.5.0") == _d("2020-04-10")
        with pytest.raises(CatalogError):
            catalog.get("99.99.99")

    def test_released_on_or_before(self):
        catalog = catalog_for("jquery")
        available = catalog.released_on_or_before(_d("2013-01-01"))
        versions = {str(r.version) for r in available}
        assert "1.8.3" in versions
        assert "1.9.0" not in versions

    def test_latest_as_of(self):
        catalog = catalog_for("jquery")
        latest = catalog.latest_as_of(_d("2018-03-05"))
        assert str(latest.version) == "3.3.1"

    def test_latest_as_of_before_history(self):
        catalog = catalog_for("jquery")
        assert catalog.latest_as_of(_d("1999-01-01")) is None

    def test_in_range(self):
        catalog = catalog_for("jquery")
        affected = catalog.in_range(parse_range("1.4.2 ~ 1.6.2"))
        versions = [str(r.version) for r in affected]
        assert "1.4.2" in versions and "1.6.1" in versions
        assert "1.6.2" not in versions

    def test_successors_and_next(self):
        catalog = catalog_for("jquery")
        succ = catalog.successors("3.5.1")
        assert [str(r.version) for r in succ] == ["3.6.0"]
        assert str(catalog.next_release("3.5.1").version) == "3.6.0"
        assert catalog.next_release("3.6.0") is None

    def test_first_outside(self):
        catalog = catalog_for("jquery")
        patched = catalog.first_outside(parse_range("< 3.5.0"), after="1.12.4")
        assert str(patched.version) == "3.5.0"

    def test_contains(self):
        catalog = catalog_for("jquery")
        assert "1.12.4" in catalog
        assert "0.0.1" not in catalog
        assert 3.5 not in catalog


class TestBuiltinCatalogs:
    def test_all_top15_present(self):
        catalogs = builtin_catalogs()
        for library in (
            "jquery", "bootstrap", "jquery-migrate", "jquery-ui", "modernizr",
            "js-cookie", "underscore", "isotope", "popper", "moment",
            "requirejs", "swfobject", "prototype", "jquery-cookie", "polyfill",
            "wordpress",
        ):
            assert library in catalogs, library

    def test_jquery_has_paper_scale_history(self):
        # The paper swept 85 environments from 1.0 to 3.7; our catalog
        # covers the 80 releases up to the collection cutoff.
        assert len(catalog_for("jquery")) >= 75

    def test_dates_monotone_within_major_lines(self):
        catalog = catalog_for("jquery")
        by_line = {}
        for release in catalog:
            line = (release.version.major, release.version.minor)
            if line in by_line:
                assert release.date >= by_line[line]
            by_line[line] = release.date

    def test_unknown_library(self):
        with pytest.raises(CatalogError):
            catalog_for("left-pad")

    def test_cve_boundary_versions_exist(self):
        """Every version bounding a Table 2 range is catalogued."""
        from repro.vulndb.data import library_advisories

        catalogs = builtin_catalogs()
        for advisory in library_advisories():
            catalog = catalogs[advisory.library]
            for patched in advisory.patched_versions:
                assert patched in catalog, (advisory.identifier, patched)
